package conformance

// Transduction conformance: every machine in the matrix also runs as a
// Moore and a Mealy transducer with a deterministically derived λ, and
// every transduce lane — single-core, multicore, plan round-trip, and
// the speculative chunked replay (with both a default and a poisoned
// guess) — must reproduce the scalar oracle's output tape byte for
// byte, and its span folding exactly.

import (
	"context"
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/speculative"
)

// transGamma is the derived transducers' output-alphabet size. Small
// and coprime-ish with nothing in particular: outputs cycle through
// 0..2, so OutputNone gaps and multi-symbol spans both occur.
const transGamma = 3

// OracleTransduce is the scalar transducer reference: one symbol, one
// OutputAt lookup, one Next lookup. Like OracleFinal it shares no code
// with the transducing runners, so a replay bug cannot cancel out.
func OracleTransduce(t *fsm.Transducer, input []byte, start fsm.State) ([]fsm.Output, fsm.State) {
	d := t.DFA()
	tape := make([]fsm.Output, len(input))
	q := start
	for i, a := range input {
		tape[i] = t.OutputAt(q, a)
		q = d.Next(q, a)
	}
	return tape, q
}

// deriveTransducer attaches a deterministic λ to d: Moore machines get
// λ(q) = q mod γ, Mealy machines λ(q, a) = (q + a) mod γ. Derived, not
// random, so a failure reproduces from the machine alone.
func deriveTransducer(d *fsm.DFA, kind fsm.Kind) (*fsm.Transducer, error) {
	switch kind {
	case fsm.KindMoore:
		t, err := fsm.NewMoore(d, transGamma)
		if err != nil {
			return nil, err
		}
		for q := 0; q < d.NumStates(); q++ {
			t.SetMooreOutput(fsm.State(q), fsm.Output(q%transGamma))
		}
		return t, nil
	case fsm.KindMealy:
		t, err := fsm.NewMealy(d, transGamma)
		if err != nil {
			return nil, err
		}
		for a := 0; a < d.NumSymbols(); a++ {
			for q := 0; q < d.NumStates(); q++ {
				t.SetMealyOutput(fsm.State(q), byte(a), fsm.Output((q+a)%transGamma))
			}
		}
		return t, nil
	}
	return nil, fmt.Errorf("conformance: cannot derive a %s transducer", kind)
}

// transProbe is one derived transducer with its transducing runner
// matrix: single-core, multicore, and a runner rebuilt from a
// marshal → unmarshal round trip of the transducer plan.
type transProbe struct {
	kind   fsm.Kind
	t      *fsm.Transducer
	single *core.Runner
	multi  *core.Runner
	reload *core.Runner
}

// buildTransProbes compiles the Moore and Mealy probes for c's machine
// (Auto strategy resolution, as a service would compile them).
func (c *checker) buildTransProbes() *Divergence {
	fail := func(kind fsm.Kind, err error) *Divergence {
		return &Divergence{
			Check: "transduce-compile", Strategy: kind.String(),
			Machine: c.d, MachineLabel: c.label, Detail: err.Error(),
		}
	}
	for _, kind := range []fsm.Kind{fsm.KindMoore, fsm.KindMealy} {
		t, err := deriveTransducer(c.d, kind)
		if err != nil {
			return fail(kind, err)
		}
		p, err := core.CompileTransducer(t, core.WithMinChunk(c.cfg.MinChunk))
		if err != nil {
			return fail(kind, err)
		}
		single, err := core.NewFromPlan(p, core.WithMinChunk(c.cfg.MinChunk))
		if err != nil {
			return fail(kind, err)
		}
		multi, err := core.NewFromPlan(p,
			core.WithMinChunk(c.cfg.MinChunk), core.WithProcs(c.cfg.Procs))
		if err != nil {
			return fail(kind, err)
		}
		probe := &transProbe{kind: kind, t: t, single: single, multi: multi}
		if !c.cfg.SkipPlanRoundTrip {
			data, err := p.MarshalBinary()
			if err != nil {
				return fail(kind, fmt.Errorf("marshal: %w", err))
			}
			rp, err := core.UnmarshalPlan(data)
			if err != nil {
				return fail(kind, fmt.Errorf("unmarshal: %w", err))
			}
			if rp.Fingerprint() != p.Fingerprint() {
				return fail(kind, fmt.Errorf("fingerprint drift: %s -> %s", p.Fingerprint(), rp.Fingerprint()))
			}
			if rp.Kind() != kind {
				return fail(kind, fmt.Errorf("kind drift: decoded plan is %s", rp.Kind()))
			}
			probe.reload, err = core.NewFromPlan(rp,
				core.WithMinChunk(c.cfg.MinChunk), core.WithProcs(c.cfg.Procs))
			if err != nil {
				return fail(kind, fmt.Errorf("runner from decoded plan: %w", err))
			}
		}
		c.trans = append(c.trans, probe)
	}
	return nil
}

// tapesEqual locates the first disagreement, or -1.
func tapesEqual(a, b []fsm.Output) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// oracleSpans folds a tape into maximal non-OutputNone runs — the
// specification TransduceSpans must meet.
func oracleSpans(tape []fsm.Output) []core.Span {
	var spans []core.Span
	for i := 0; i < len(tape); {
		if tape[i] == fsm.OutputNone {
			i++
			continue
		}
		j := i + 1
		for j < len(tape) && tape[j] == tape[i] {
			j++
		}
		spans = append(spans, core.Span{Start: i, End: j, Out: tape[i]})
		i = j
	}
	return spans
}

// checkTransduce compares every transduce lane of every probe against
// the scalar oracle for one (input, start) pair.
func (c *checker) checkTransduce(input []byte, start fsm.State) *Divergence {
	for _, probe := range c.trans {
		wantTape, wantFinal := OracleTransduce(probe.t, input, start)
		kind := probe.kind.String()
		lanes := []struct {
			name string
			r    *core.Runner
		}{
			{"transduce-single", probe.single},
			{"transduce-multicore", probe.multi},
		}
		if probe.reload != nil {
			lanes = append(lanes, struct {
				name string
				r    *core.Runner
			}{"transduce-roundtrip", probe.reload})
		}
		for _, lane := range lanes {
			tape, final, err := lane.r.TransduceOutputs(input, start)
			if err != nil {
				return c.divergence(lane.name, kind, input, start, wantFinal, final, "error: "+err.Error())
			}
			if final != wantFinal {
				return c.divergence(lane.name, kind, input, start, wantFinal, final, "final state")
			}
			if i := tapesEqual(tape, wantTape); i >= 0 {
				return c.divergence(lane.name, kind, input, start, wantFinal, final,
					fmt.Sprintf("output tape diverges at %d: got %d want %d (procs=%d)",
						i, tape[i], wantTape[i], lane.r.Procs()))
			}
			spans, final2, err := lane.r.TransduceSpans(input, start)
			if err != nil {
				return c.divergence(lane.name, kind, input, start, wantFinal, final2, "spans error: "+err.Error())
			}
			if final2 != wantFinal {
				return c.divergence(lane.name, kind, input, start, wantFinal, final2, "spans final state")
			}
			wantSpans := oracleSpans(wantTape)
			if len(spans) != len(wantSpans) {
				return c.divergence(lane.name, kind, input, start, wantFinal, final2,
					fmt.Sprintf("%d spans, oracle folds %d", len(spans), len(wantSpans)))
			}
			for i := range spans {
				if spans[i] != wantSpans[i] {
					return c.divergence(lane.name, kind, input, start, wantFinal, final2,
						fmt.Sprintf("span %d = %+v, oracle %+v", i, spans[i], wantSpans[i]))
				}
			}
		}
		if dv := c.checkSpecTransduce(probe, input, start, wantTape, wantFinal); dv != nil {
			return dv
		}
	}
	return nil
}

// checkSpecTransduce replays the transducer over the speculative
// chunked lane — the mechanism the engine's speculative transduce
// dispatch uses — with both the default and a poisoned guess. The
// verified starts must make the replayed tape exact either way.
func (c *checker) checkSpecTransduce(probe *transProbe, input []byte, start fsm.State, wantTape []fsm.Output, wantFinal fsm.State) *Divergence {
	kind := probe.kind.String()
	d := probe.t.DFA()
	for _, sr := range []*speculative.Runner{c.spec, c.specBad} {
		tape := make([]fsm.Output, len(input))
		final, stats, err := sr.RunChunkedCtx(context.Background(), input, start,
			func(off int, chunk []byte, st fsm.State) fsm.State {
				q := st
				for i, b := range chunk {
					tape[off+i] = probe.t.OutputAt(q, b)
					q = d.Next(q, b)
				}
				return q
			})
		if err != nil {
			return c.divergence("transduce-speculative", kind, input, start, wantFinal, final,
				"error: "+err.Error())
		}
		if final != wantFinal {
			return c.divergence("transduce-speculative", kind, input, start, wantFinal, final,
				fmt.Sprintf("guess=%d chunks=%d misspeculated=%d", sr.Guess(), stats.Chunks, stats.Misspeculated))
		}
		if i := tapesEqual(tape, wantTape); i >= 0 {
			return c.divergence("transduce-speculative", kind, input, start, wantFinal, final,
				fmt.Sprintf("output tape diverges at %d: got %d want %d (guess=%d misspeculated=%d)",
					i, tape[i], wantTape[i], sr.Guess(), stats.Misspeculated))
		}
	}
	return nil
}
