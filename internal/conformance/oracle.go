package conformance

import "dpfsm/internal/fsm"

// The oracle. Deliberately the dumbest possible interpreter: one
// symbol, one table lookup, via the bounds-checked DFA.Next accessor.
// It shares no code with the unrolled sequential baseline (fsm.
// RunUnrolled), the enumerative kernels, or the multicore scheduler,
// so a bug in any of those cannot cancel out of a comparison.

// OracleFinal returns the state the machine reaches from start after
// consuming input, computed one transition at a time.
func OracleFinal(d *fsm.DFA, input []byte, start fsm.State) fsm.State {
	q := start
	for _, a := range input {
		q = d.Next(q, a)
	}
	return q
}

// OracleVector returns the composed transition function of the whole
// input: element q is OracleFinal(d, input, q). This is the quantity
// phase 1 of the multicore algorithm computes per chunk, derived here
// by |Q| independent scalar runs.
func OracleVector(d *fsm.DFA, input []byte) []fsm.State {
	vec := make([]fsm.State, d.NumStates())
	for q := range vec {
		vec[q] = OracleFinal(d, input, fsm.State(q))
	}
	return vec
}
