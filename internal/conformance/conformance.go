// Package conformance is the differential-testing subsystem of the
// data-parallel FSM runtime: machine-generated adversarial evidence
// that every execution path computes exactly what the scalar DFA
// interpreter computes.
//
// The paper's whole contribution rests on one equivalence (§3): the
// enumerative gather kernel, the range-coalesced tables of Figure 11,
// and the Figure 5 multicore parallel-prefix decomposition are
// *rewrites* of the sequential loop q = T[a][q], correct because
// transition-function composition is associative. Every layer this
// repository has grown since — strategy selection, the engine's
// small/large dispatch lanes, plan serialization, the dynamic registry
// — multiplies the surface over which that equivalence must hold. This
// package checks it the only way that scales: generate machines biased
// toward the regimes where the optimizations change behavior (range
// just above and below the shuffle width, convergent and
// permutation-adversarial transition functions, dead states,
// single-state and degenerate-alphabet machines), generate inputs
// around every chunking boundary, and run each (machine, input) pair
// through every registered strategy, both engine lanes, a plan
// marshal → unmarshal round trip, and chunked-vs-whole execution,
// comparing all of them against a trivially correct scalar oracle.
//
// Alongside the oracle checks ride metamorphic properties that need no
// oracle at all, so fuzzers can run them on arbitrary generated cases
// at full speed:
//
//   - split-point invariance: for any split s,
//     Final(x) == Final(x[s:], Final(x[:s])) — the associativity
//     argument the multicore decomposition is built on;
//   - concatenation consistency: Final(a‖b, q) == Final(b, Final(a, q));
//   - trace/telemetry consistency: the chunk counts, byte ranges and
//     active-vector widths a traced run reports in its spans match the
//     aggregate telemetry the same run flushed.
//
// A failing case is minimized before it is reported: the input is
// shrunk ddmin-style (halves, then quarter deletions), then machine
// states are removed one at a time while the divergence reproduces.
//
// The harness is exposed three ways: the property suites in this
// package's tests (honoring -short), Go fuzz targets (FuzzDifferential,
// FuzzSplitInvariance) with committed seed corpora, and the
// cmd/fsmverify CLI, which soak-tests N seeded random machines and
// emits a JSON report for CI.
package conformance

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
)

// Config sizes the differential checks. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Strategies lists the single-core strategies to cross-check.
	// Strategies a machine cannot compile for (range coalescing with
	// max range > 256) are skipped silently.
	Strategies []core.Strategy
	// Procs is the multicore width used for the Figure 5 runners.
	Procs int
	// MinChunk is the per-goroutine minimum chunk size. The default is
	// deliberately tiny (64 bytes, against the production default of
	// 4 KiB) so that multicore decomposition, chunk-boundary folding
	// and the engine's multicore lane all engage on short inputs.
	MinChunk int
	// LargeInput is the engine dispatch threshold: generated inputs at
	// or above it exercise the multicore lane, smaller ones the
	// single-core lane.
	LargeInput int
	// MaxVectorStates caps full composition-vector oracle comparisons;
	// machines with more states still get final-state checks from two
	// start states, but not the O(n·|input|) all-starts sweep.
	MaxVectorStates int
	// ShrinkBudget bounds the number of reproduction attempts one
	// Shrink call may spend.
	ShrinkBudget int
	// SkipEngine disables the engine-lane checks (used by fuzz targets,
	// where worker-pool setup per execution would dominate).
	SkipEngine bool
	// SkipPlanRoundTrip disables the marshal → unmarshal → re-run check.
	SkipPlanRoundTrip bool
	// SkipTrace disables the trace/telemetry consistency property.
	SkipTrace bool
	// SkipFold disables the long-input fold probe (one ≈130 KiB run per
	// machine crossing several 64 KiB context-fold block boundaries).
	SkipFold bool
	// SkipCluster disables the distributed lane probe (two live HTTP
	// peers per machine, chunk-split invariance over the network plus a
	// dead-network degraded run). Skipped by fuzz targets: peer setup
	// per execution would dominate.
	SkipCluster bool
}

// DefaultConfig returns the configuration the property suites and
// fsmverify run with.
func DefaultConfig() Config {
	return Config{
		Strategies: []core.Strategy{
			core.Sequential,
			core.Base,
			core.BaseILP,
			core.Convergence,
			core.RangeCoalesced,
			core.RangeConvergence,
		},
		Procs:           4,
		MinChunk:        64,
		LargeInput:      128,
		MaxVectorStates: 64,
		ShrinkBudget:    400,
	}
}

// QuickConfig is the fuzz-target configuration: oracle and metamorphic
// checks only, no engine pool and no serialization round trip, so one
// fuzz execution stays microseconds-cheap.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.SkipEngine = true
	cfg.SkipPlanRoundTrip = true
	cfg.SkipTrace = true
	cfg.SkipFold = true
	cfg.SkipCluster = true
	cfg.MaxVectorStates = 32
	return cfg
}

// Divergence describes one observed disagreement between an execution
// path and the oracle (or between the two sides of a metamorphic
// property). It implements error.
type Divergence struct {
	// Check names the property that failed: "strategy-final",
	// "multicore-final", "ctx-final", "chunked-final",
	// "chunked-coverage", "composition-vector", "plan-roundtrip",
	// "engine-final", "engine-lane", "split-invariance",
	// "concatenation", "trace-consistency", "compile".
	Check string
	// Strategy is the single-core strategy under test, when the check
	// is strategy-specific.
	Strategy string
	// Machine and Input are the failing pair; MachineLabel names the
	// generator regime that produced the machine (when known).
	Machine      *fsm.DFA
	MachineLabel string
	Input        []byte
	Start        fsm.State
	Want, Got    fsm.State
	// Detail carries check-specific context (split point, lane reason,
	// vector index, ...).
	Detail string
	// Shrunk reports whether the pair has been through Shrink.
	Shrunk bool
}

// Error renders the divergence as a one-line diagnosis.
func (dv *Divergence) Error() string {
	if dv == nil {
		return "<nil divergence>"
	}
	states, symbols := 0, 0
	if dv.Machine != nil {
		states, symbols = dv.Machine.NumStates(), dv.Machine.NumSymbols()
	}
	s := fmt.Sprintf("conformance: %s", dv.Check)
	if dv.Strategy != "" {
		s += fmt.Sprintf(" [%s]", dv.Strategy)
	}
	s += fmt.Sprintf(": machine{states:%d symbols:%d", states, symbols)
	if dv.MachineLabel != "" {
		s += " regime:" + dv.MachineLabel
	}
	s += fmt.Sprintf("} input=%d bytes start=%d: got state %d, want %d",
		len(dv.Input), dv.Start, dv.Got, dv.Want)
	if dv.Detail != "" {
		s += " (" + dv.Detail + ")"
	}
	return s
}
