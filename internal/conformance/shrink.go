package conformance

import "dpfsm/internal/fsm"

// Minimization. A divergence found on a 300-state machine and a
// 450-byte input is unreadable; the same divergence on 3 states and
// 4 bytes is a unit test. Shrink reduces the input first (greedy
// halving, then ddmin-style chunk deletion at doubling granularity),
// then removes machine states one at a time, keeping every reduction
// that still diverges. The reproduction predicate is the full check
// suite, so the shrunk case may surface as a *different* check than
// the original — any divergence counts; what matters is that the pair
// still exhibits one.

// Shrink minimizes dv's (machine, input) pair under cfg, spending at
// most cfg.ShrinkBudget reproduction attempts. The returned divergence
// has Shrunk set when any reduction succeeded; the original is
// returned unchanged when none did (or when dv carries no machine).
func Shrink(dv *Divergence, cfg Config) *Divergence {
	return shrinkWith(dv, cfg.ShrinkBudget, func(d *fsm.DFA, in []byte) *Divergence {
		return CheckInput(d, in, cfg)
	})
}

// shrinkWith is Shrink with an injectable reproduction predicate, so
// the shrink loop itself is testable without a real conformance bug.
func shrinkWith(dv *Divergence, budget int, repro func(*fsm.DFA, []byte) *Divergence) *Divergence {
	if dv == nil || dv.Machine == nil || budget <= 0 {
		return dv
	}
	best := dv
	d, in := dv.Machine, dv.Input
	try := func(cd *fsm.DFA, cin []byte) bool {
		if budget <= 0 {
			return false
		}
		budget--
		ndv := repro(cd, cin)
		if ndv == nil {
			return false
		}
		ndv.MachineLabel = dv.MachineLabel
		ndv.Shrunk = true
		best = ndv
		return true
	}
	in = shrinkInput(in, d, try)
	for budget > 0 && d.NumStates() > 1 {
		removed := false
		for q := d.NumStates() - 1; q >= 0 && budget > 0; q-- {
			cand := removeState(d, q)
			if try(cand, in) {
				d = cand
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	return best
}

// shrinkInput reduces in while try keeps reproducing on machine d.
func shrinkInput(in []byte, d *fsm.DFA, try func(*fsm.DFA, []byte) bool) []byte {
	cur := in
	if len(cur) > 0 && try(d, nil) {
		return nil
	}
	// Greedy halving: most divergences live in one half.
	for len(cur) > 1 {
		n := len(cur)
		if try(d, cur[:n/2]) {
			cur = cur[:n/2]
			continue
		}
		if try(d, cur[n/2:]) {
			cur = cur[n/2:]
			continue
		}
		break
	}
	// ddmin-style: delete 1/k chunks at doubling granularity.
	for k := 2; k < len(cur); k *= 2 {
		progress := true
		for progress && len(cur) > 1 {
			progress = false
			chunk := (len(cur) + k - 1) / k
			for off := 0; off < len(cur); off += chunk {
				hi := off + chunk
				if hi > len(cur) {
					hi = len(cur)
				}
				cand := append(append([]byte{}, cur[:off]...), cur[hi:]...)
				if len(cand) == len(cur) {
					continue
				}
				if try(d, cand) {
					cur = cand
					progress = true
					break
				}
			}
		}
	}
	return cur
}

// removeState builds a copy of d without state q: surviving states are
// renumbered densely, and every transition into q (including the start,
// if q was it) is redirected to the lowest surviving state. The result
// is always a valid machine; whether it still diverges is for the
// caller's predicate to decide.
func removeState(d *fsm.DFA, q int) *fsm.DFA {
	n, k := d.NumStates(), d.NumSymbols()
	nd := fsm.MustNew(n-1, k)
	remap := func(s fsm.State) fsm.State {
		switch {
		case int(s) == q:
			return 0
		case int(s) > q:
			return fsm.State(int(s) - 1)
		default:
			return s
		}
	}
	for old := 0; old < n; old++ {
		if old == q {
			continue
		}
		nq := remap(fsm.State(old))
		nd.SetAccepting(nq, d.Accepting(fsm.State(old)))
		for a := 0; a < k; a++ {
			nd.SetTransition(nq, byte(a), remap(d.Next(fsm.State(old), byte(a))))
		}
	}
	nd.SetStart(remap(d.Start()))
	return nd
}
