package conformance

import (
	"math/rand"
	"time"
)

// Per-phase wall-time accounting for soak runs. The checker's phases
// dominate fsmverify's runtime very unevenly (the oracle sweep is the
// bulk; the fold probe is one long input per machine), so the soak
// report breaks elapsed time down by phase to make cost shifts across
// revisions visible in CI artifacts. Timing lives outside Report on
// purpose: Report must stay byte-identical across same-seed runs.

// PhaseTiming accumulates wall time for one checker phase.
type PhaseTiming struct {
	Calls   int   `json:"calls"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// observe folds one phase invocation into the stats.
func (p *PhaseTiming) observe(d time.Duration) {
	p.Calls++
	ns := d.Nanoseconds()
	p.TotalNs += ns
	if ns > p.MaxNs {
		p.MaxNs = ns
	}
}

// MeanNs is the average invocation cost, 0 when the phase never ran.
func (p PhaseTiming) MeanNs() int64 {
	if p.Calls == 0 {
		return 0
	}
	return p.TotalNs / int64(p.Calls)
}

// Timings is the per-phase breakdown of one soak run. Compile counts
// one call per machine (strategy matrix + engine registration); Oracle
// one per input (the full differential sweep of check); Split one per
// input; Concat, Trace, Fold and Cluster one per machine, minus any
// phases the Config skips.
type Timings struct {
	Compile PhaseTiming `json:"compile"`
	Oracle  PhaseTiming `json:"oracle"`
	Split   PhaseTiming `json:"split"`
	Concat  PhaseTiming `json:"concat"`
	Trace   PhaseTiming `json:"trace"`
	Fold    PhaseTiming `json:"fold"`
	Cluster PhaseTiming `json:"cluster"`
}

// timePhase runs one phase under the clock and passes its verdict
// through.
func timePhase(pt *PhaseTiming, fn func() *Divergence) *Divergence {
	t0 := time.Now()
	dv := fn()
	pt.observe(time.Since(t0))
	return dv
}

// checkTimed is Check with the clock on: identical phase order and
// verdicts, wall time accumulated into tm.
func checkTimed(gm GeneratedMachine, inputs [][]byte, cfg Config, tm *Timings) *Divergence {
	var c *checker
	if dv := timePhase(&tm.Compile, func() (dv *Divergence) {
		c, dv = newChecker(gm.D, gm.Label, cfg)
		return dv
	}); dv != nil {
		return dv
	}
	defer c.Close()
	for _, in := range inputs {
		in := in
		if dv := timePhase(&tm.Oracle, func() *Divergence { return c.check(in) }); dv != nil {
			return dv
		}
		if dv := timePhase(&tm.Split, func() *Divergence { return c.checkSplit(in) }); dv != nil {
			return dv
		}
	}
	if dv := timePhase(&tm.Concat, func() *Divergence { return c.checkConcat(inputs) }); dv != nil {
		return dv
	}
	if !cfg.SkipTrace {
		if dv := timePhase(&tm.Trace, func() *Divergence { return c.checkTrace(pickLongest(inputs)) }); dv != nil {
			return dv
		}
	}
	if !cfg.SkipFold {
		if dv := timePhase(&tm.Fold, func() *Divergence { return c.checkFold(foldProbe(inputs)) }); dv != nil {
			return dv
		}
	}
	if !cfg.SkipCluster {
		if dv := timePhase(&tm.Cluster, func() *Divergence { return c.checkCluster(inputs) }); dv != nil {
			return dv
		}
	}
	return nil
}

// SoakTimed is Soak plus the per-phase wall-time breakdown. The Report
// is identical to what Soak returns for the same (n, seed, cfg) —
// timing never feeds back into generation or checking.
func SoakTimed(n int, seed int64, cfg Config, progress func(i int, gm GeneratedMachine)) (Report, Timings) {
	var tm Timings
	rng := rand.New(rand.NewSource(seed))
	rep := Report{
		OK:          true,
		Seed:        seed,
		Machines:    n,
		Regimes:     make(map[string]int),
		Strategies:  StrategyNames(cfg),
		FailedIndex: -1,
	}
	for i := 0; i < n; i++ {
		gm := RandomMachine(rng, i)
		if progress != nil {
			progress(i, gm)
		}
		inputs := Inputs(rng, gm.D, cfg)
		rep.MachinesRun++
		rep.Inputs += len(inputs)
		rep.Regimes[gm.Label]++
		if dv := checkTimed(gm, inputs, cfg, &tm); dv != nil {
			dv = Shrink(dv, cfg)
			rep.OK = false
			rep.FailedIndex = i
			rep.Divergence = reportDivergence(dv)
			break
		}
	}
	return rep, tm
}
