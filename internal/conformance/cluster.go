package conformance

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"dpfsm/internal/cluster"
	"dpfsm/internal/fsm"
)

// The distributed lane's differential probe: the same machine served
// over real HTTP by two in-process peers, coordinated at two different
// chunk sizes. Correctness here is the paper's §3.4 claim stretched
// across a network — the composition vectors a peer returns must
// reduce to the oracle's final state no matter how the input was
// chunked, and a fan-out that loses every peer must still answer
// exactly (degraded, never wrong).

// clusterCoarseChunk and clusterFineChunk are the two fan-out
// granularities compared per input: coarse keeps most soak inputs in
// one or two chunks, fine forces many-chunk reduction on the same
// bytes.
const (
	clusterCoarseChunk = 4096
	clusterFineChunk   = 128
)

// checkCluster spins up two live peers, replays every input through
// both coordinators against the oracle, then kills the network under
// the longest input and requires a correct degraded answer. One probe
// per machine: peer setup amortizes over the machine's input set.
func (c *checker) checkCluster(inputs [][]byte) *Divergence {
	if len(c.strategies) == 0 || len(inputs) == 0 {
		return nil
	}
	p := c.singles[c.strategies[0]].PlanRef()
	fail := func(check string, input []byte, start, want, got fsm.State, detail string) *Divergence {
		return c.divergence(check, "", input, start, want, got, detail)
	}

	faults := cluster.NewFaultRoundTripper(nil)
	client := &http.Client{Transport: faults}
	var peers, hosts []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(cluster.NewPeer(nil).Handler())
		defer srv.Close()
		peers = append(peers, srv.URL)
		hosts = append(hosts, cluster.HostOf(srv.URL))
	}
	newCoord := func(chunk int) (*cluster.Coordinator, error) {
		return cluster.NewCoordinator(cluster.Config{
			Peers:       peers,
			Transport:   cluster.NewHTTPTransport(client),
			ChunkBytes:  chunk,
			MaxRetries:  1,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  2 * time.Millisecond,
		})
	}
	coords := make(map[int]*cluster.Coordinator, 2)
	for _, chunk := range []int{clusterCoarseChunk, clusterFineChunk} {
		co, err := newCoord(chunk)
		if err != nil {
			return fail("cluster-final", nil, 0, 0, 0, "coordinator: "+err.Error())
		}
		coords[chunk] = co
	}

	ctx := context.Background()
	start := c.d.Start()
	for _, in := range inputs {
		want := OracleFinal(c.d, in, start)
		for chunk, co := range coords {
			got, stats, err := co.Exec(ctx, p, in, start)
			if err != nil {
				return fail("cluster-final", in, start, want, got,
					fmt.Sprintf("chunk=%d: %v", chunk, err))
			}
			if got != want {
				return fail("cluster-final", in, start, want, got,
					fmt.Sprintf("chunk=%d stats=%+v", chunk, stats))
			}
			if stats.Degraded {
				return fail("cluster-final", in, start, want, got,
					fmt.Sprintf("chunk=%d degraded with healthy peers: %+v", chunk, stats))
			}
		}
	}

	// Fault leg: every peer drops every request. The answer must still
	// match the oracle, and the run must say it degraded.
	for _, h := range hosts {
		faults.SetAlways(h, cluster.FaultDrop)
	}
	in := pickLongest(inputs)
	want := OracleFinal(c.d, in, start)
	got, stats, err := coords[clusterFineChunk].Exec(ctx, p, in, start)
	if err != nil {
		return fail("cluster-degraded", in, start, want, got, "fault leg: "+err.Error())
	}
	if got != want {
		return fail("cluster-degraded", in, start, want, got,
			fmt.Sprintf("dead peers answered wrong: stats=%+v", stats))
	}
	if len(in) > 0 && (!stats.Degraded || stats.RemoteChunks != 0 || stats.LocalChunks != stats.Chunks) {
		return fail("cluster-degraded", in, start, want, got,
			fmt.Sprintf("dead peers not surfaced as degraded: stats=%+v", stats))
	}
	return nil
}
