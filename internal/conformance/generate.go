package conformance

import (
	"math/rand"

	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
)

// Machine generation. Uniform random machines are a weak adversary:
// they converge almost immediately and their per-symbol ranges sit far
// from the decision boundaries, so a bug in the ≤-width shuffle path
// or the factor cadence would survive millions of them. The regimes
// below aim each generated machine at a place where the paper's
// optimizations change behavior — the shuffle-width boundary (§5.3's
// tables are only built when max range ≤ gather.Width on the Auto
// path, and the byte-name tables cap at 256), the convergence
// heuristics (§5.2 fires eagerly on range drops), dead and unreachable
// states (Factor must not resurrect them), and the degenerate shapes
// (one state, one symbol) where off-by-ones live.

// GeneratedMachine is one machine plus the regime label that produced
// it, for divergence reports.
type GeneratedMachine struct {
	Label string
	D     *fsm.DFA
}

// regime is one biased generator.
type regime struct {
	label string
	gen   func(rng *rand.Rand) *fsm.DFA
}

// symCount draws an alphabet size biased toward small alphabets but
// covering the full 1..256 span.
func symCount(rng *rand.Rand) int {
	switch rng.Intn(4) {
	case 0:
		return 1 + rng.Intn(4)
	case 1:
		return 2 + rng.Intn(30)
	case 2:
		return 64 + rng.Intn(128)
	default:
		return 256
	}
}

// regimes is the generator table RandomMachine cycles through.
var regimes = []regime{
	{"single-state", func(rng *rand.Rand) *fsm.DFA {
		// One state: every strategy must be a fixed point.
		return fsm.Random(rng, 1, symCount(rng), 0.5)
	}},
	{"tiny", func(rng *rand.Rand) *fsm.DFA {
		return fsm.Random(rng, 2+rng.Intn(3), symCount(rng), 0.3)
	}},
	{"converge-fast", func(rng *rand.Rand) *fsm.DFA {
		// Per-symbol range 1..4: collapses into the register regime
		// within a handful of symbols.
		return fsm.RandomConverging(rng, 8+rng.Intn(120), symCount(rng), 1+rng.Intn(4), 0.2)
	}},
	{"range-below-width", func(rng *rand.Rand) *fsm.DFA {
		// Max range just under the shuffle width: one block per symbol.
		return fsm.RandomConverging(rng, 24+rng.Intn(104), symCount(rng), gather.Width-1, 0.2)
	}},
	{"range-at-width", func(rng *rand.Rand) *fsm.DFA {
		// Exactly the width: the Auto boundary case (≤ picks coalescing).
		return fsm.RandomConverging(rng, 24+rng.Intn(104), symCount(rng), gather.Width, 0.2)
	}},
	{"range-above-width", func(rng *rand.Rand) *fsm.DFA {
		// One past the width: Auto flips to convergence; coalescing,
		// when forced, needs a second block.
		return fsm.RandomConverging(rng, 24+rng.Intn(104), symCount(rng), gather.Width+1, 0.2)
	}},
	{"permutation", func(rng *rand.Rand) *fsm.DFA {
		// Every transition function a permutation: the active vector
		// never shrinks, Factor never wins.
		return fsm.RandomPermutation(rng, 2+rng.Intn(62), symCount(rng), 0.3)
	}},
	{"dead-states", withDeadStates},
	{"alphabet-1", func(rng *rand.Rand) *fsm.DFA {
		// A single symbol: the input is pure repetition, so every run
		// walks one functional orbit.
		return fsm.Random(rng, 2+rng.Intn(40), 1, 0.3)
	}},
	{"wide", func(rng *rand.Rand) *fsm.DFA {
		// More than 256 states: the byte-encoded columns and byte-name
		// tables are unavailable, forcing the 16-bit kernels.
		return fsm.RandomConverging(rng, 257+rng.Intn(64), symCount(rng), 1+rng.Intn(40), 0.2)
	}},
	{"wide-permutation", func(rng *rand.Rand) *fsm.DFA {
		// Wide and non-converging: max range > 256, so the range
		// strategies must refuse to compile and Auto must pick
		// convergence over 16-bit lanes.
		return fsm.RandomPermutation(rng, 257+rng.Intn(64), 1+rng.Intn(16), 0.3)
	}},
	{"uniform", func(rng *rand.Rand) *fsm.DFA {
		return fsm.Random(rng, 2+rng.Intn(126), symCount(rng), 0.3)
	}},
}

// withDeadStates builds a converging machine and grafts on two kinds
// of dead weight: a reachable trap state (all its transitions
// self-loop) and a block of unreachable states that only transition
// among themselves. The enumerative strategies still carry all of them
// in the state vector; Factor must deduplicate without ever inventing
// a transition into the unreachable block.
func withDeadStates(rng *rand.Rand) *fsm.DFA {
	base := 8 + rng.Intn(56)
	extra := 2 + rng.Intn(6) // trap + unreachables
	k := symCount(rng)
	n := base + extra
	d := fsm.MustNew(n, k)
	d.SetStart(fsm.State(rng.Intn(base)))
	maxRange := 1 + rng.Intn(gather.Width)
	live := fsm.RandomConverging(rng, base, k, maxRange, 0.3)
	for a := 0; a < k; a++ {
		for q := 0; q < base; q++ {
			d.SetTransition(fsm.State(q), byte(a), live.Next(fsm.State(q), byte(a)))
		}
		// trap: absorbs itself.
		trap := fsm.State(base)
		d.SetTransition(trap, byte(a), trap)
		// unreachable block: random transitions within the block.
		for q := base + 1; q < n; q++ {
			t := base + 1 + rng.Intn(extra-1)
			d.SetTransition(fsm.State(q), byte(a), fsm.State(t))
		}
	}
	for q := 0; q < base; q++ {
		d.SetAccepting(fsm.State(q), live.Accepting(fsm.State(q)))
	}
	// Sometimes make the trap reachable from one live state.
	if rng.Intn(2) == 0 && k > 0 {
		d.SetTransition(fsm.State(rng.Intn(base)), byte(rng.Intn(k)), fsm.State(base))
	}
	return d
}

// NumRegimes reports how many generator regimes RandomMachine cycles
// through; i and i+NumRegimes() draw from the same regime.
func NumRegimes() int { return len(regimes) }

// RandomMachine derives one adversarially shaped machine from rng. The
// index selects the regime round-robin, so any window of NumRegimes
// consecutive indices covers every regime once.
func RandomMachine(rng *rand.Rand, i int) GeneratedMachine {
	r := regimes[((i%len(regimes))+len(regimes))%len(regimes)]
	return GeneratedMachine{Label: r.label, D: r.gen(rng)}
}

// Inputs builds the adversarial input set for d under cfg: the empty
// input, single symbols, lengths straddling every multicore split
// boundary (minChunk and 2·minChunk are where useMulticore and
// splitChunks change shape, and the engine's LargeInput threshold is
// where the dispatch lane flips), pathological repetition (one-symbol
// and short-period inputs keep the active vector walking a single
// orbit), and uniform random fills.
func Inputs(rng *rand.Rand, d *fsm.DFA, cfg Config) [][]byte {
	k := d.NumSymbols()
	mc := cfg.MinChunk
	if mc < 2 {
		mc = 2
	}
	lengths := []int{
		0, 1, 2, 3,
		mc - 1, mc, mc + 1,
		2*mc - 1, 2 * mc, 2*mc + 1,
		cfg.LargeInput, cfg.LargeInput + 1,
		cfg.Procs*mc + rng.Intn(mc),
	}
	var out [][]byte
	seen := map[int]bool{}
	for _, n := range lengths {
		if n < 0 || (n == 0 && seen[0]) {
			continue
		}
		if n == 0 {
			seen[0] = true
			out = append(out, nil)
			continue
		}
		out = append(out, randomFill(rng, k, n))
		switch rng.Intn(3) {
		case 0:
			out = append(out, repeatFill(rng, k, n, 1))
		case 1:
			out = append(out, repeatFill(rng, k, n, 2+rng.Intn(3)))
		case 2:
			// Converge-then-switch: constant prefix, random tail.
			in := repeatFill(rng, k, n, 1)
			copy(in[n/2:], randomFill(rng, k, n-n/2))
			out = append(out, in)
		}
	}
	return out
}

func randomFill(rng *rand.Rand, symbols, n int) []byte {
	in := make([]byte, n)
	for i := range in {
		in[i] = byte(rng.Intn(symbols))
	}
	return in
}

// repeatFill repeats a random period-length pattern.
func repeatFill(rng *rand.Rand, symbols, n, period int) []byte {
	pat := make([]byte, period)
	for i := range pat {
		pat[i] = byte(rng.Intn(symbols))
	}
	in := make([]byte, n)
	for i := range in {
		in[i] = pat[i%period]
	}
	return in
}

// ClampInput maps arbitrary fuzzer bytes into d's alphabet so they
// form a legal input. The mapping is modulo, which preserves most of
// the fuzzer's byte-level structure for small alphabets.
func ClampInput(d *fsm.DFA, raw []byte) []byte {
	k := d.NumSymbols()
	if k >= 256 {
		return raw
	}
	in := make([]byte, len(raw))
	for i, b := range raw {
		in[i] = b % byte(k)
	}
	return in
}
