package conformance

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/fsm"
	"dpfsm/internal/speculative"
)

// checker holds every execution surface under test for one machine,
// built once and reused across that machine's whole input set: per
// strategy a single-core runner, a multicore runner, and a runner
// rebuilt from a marshal → unmarshal round trip of the compiled plan,
// plus one batch engine with the machine registered once per strategy
// so both dispatch lanes are exercised.
type checker struct {
	d     *fsm.DFA
	label string
	cfg   Config

	strategies []core.Strategy
	singles    map[core.Strategy]*core.Runner
	multis     map[core.Strategy]*core.Runner
	reloads    map[core.Strategy]*core.Runner

	// spec is the engine's speculative lane run directly; specBad is
	// the same lane with a deliberately poisoned guess, so every input
	// also exercises the forced-mispredict re-run path. Exactness must
	// hold on both — mispredicts may only cost time, never answers.
	spec    *speculative.Runner
	specBad *speculative.Runner

	// trans are the derived Moore/Mealy transducer probes with their
	// transducing runner matrix (transduce.go).
	trans []*transProbe

	eng *engine.Engine
}

// foldProbeLen is long enough to cross several of core's internal
// 64 KiB cancellation-fold block boundaries, so the block-carried
// state path of FinalCtx is exercised, not just the one-block case.
const foldProbeLen = 130<<10 + 17

// rangeTooWide reports whether s cannot compile for d because the
// machine's maximum transition range exceeds the byte-name limit of
// range coalescing — the one legitimate compile refusal.
func rangeTooWide(d *fsm.DFA, s core.Strategy) bool {
	if s != core.RangeCoalesced && s != core.RangeConvergence {
		return false
	}
	maxRange := 0
	for _, v := range d.RangeSizes() {
		if v > maxRange {
			maxRange = v
		}
	}
	return maxRange > 256
}

// newChecker compiles d for every applicable strategy and builds the
// runner matrix. A compile error outside the documented range-width
// refusal is itself a conformance failure, reported as a Divergence.
func newChecker(d *fsm.DFA, label string, cfg Config) (*checker, *Divergence) {
	c := &checker{
		d:       d,
		label:   label,
		cfg:     cfg,
		singles: make(map[core.Strategy]*core.Runner),
		multis:  make(map[core.Strategy]*core.Runner),
		reloads: make(map[core.Strategy]*core.Runner),
	}
	if !cfg.SkipEngine {
		c.eng = engine.New(
			engine.WithWorkers(2),
			engine.WithProcs(cfg.Procs),
			engine.WithLargeInput(cfg.LargeInput),
		)
	}
	c.spec = speculative.New(d, cfg.Procs, nil)
	c.specBad = speculative.New(d, cfg.Procs, nil)
	if d.NumStates() > 1 {
		// Any fixed wrong-ish guess does: on most machines it forces
		// mispredict cascades, and on all machines the answer must
		// still match the oracle.
		c.specBad.SetGuess(fsm.State((int(d.Start()) + 1) % d.NumStates()))
	}
	fail := func(s core.Strategy, err error) *Divergence {
		c.Close()
		return &Divergence{
			Check: "compile", Strategy: s.String(),
			Machine: d, MachineLabel: label,
			Detail: err.Error(),
		}
	}
	for _, s := range cfg.Strategies {
		if rangeTooWide(d, s) {
			continue
		}
		opts := []core.Option{core.WithStrategy(s), core.WithMinChunk(cfg.MinChunk)}
		single, err := core.New(d, opts...)
		if err != nil {
			return nil, fail(s, err)
		}
		multi, err := core.NewFromPlan(single.PlanRef(),
			append(opts, core.WithProcs(cfg.Procs))...)
		if err != nil {
			return nil, fail(s, err)
		}
		if !cfg.SkipPlanRoundTrip {
			reload, dv := c.roundTripRunner(single, s, opts)
			if dv != nil {
				c.Close()
				return nil, dv
			}
			c.reloads[s] = reload
		}
		if c.eng != nil {
			if _, err := c.eng.Register(s.String(), d, opts...); err != nil {
				return nil, fail(s, err)
			}
		}
		c.strategies = append(c.strategies, s)
		c.singles[s] = single
		c.multis[s] = multi
	}
	if dv := c.buildTransProbes(); dv != nil {
		c.Close()
		return nil, dv
	}
	return c, nil
}

// roundTripRunner serializes single's plan, decodes it back, and
// builds a runner over the decoded artifact, verifying the two plans
// agree on their fingerprint identity.
func (c *checker) roundTripRunner(single *core.Runner, s core.Strategy, opts []core.Option) (*core.Runner, *Divergence) {
	fail := func(detail string) *Divergence {
		return &Divergence{
			Check: "plan-roundtrip", Strategy: s.String(),
			Machine: c.d, MachineLabel: c.label, Detail: detail,
		}
	}
	data, err := single.PlanRef().MarshalBinary()
	if err != nil {
		return nil, fail("marshal: " + err.Error())
	}
	p, err := core.UnmarshalPlan(data)
	if err != nil {
		return nil, fail("unmarshal: " + err.Error())
	}
	if p.Fingerprint() != single.PlanRef().Fingerprint() {
		return nil, fail(fmt.Sprintf("fingerprint drift: %s -> %s",
			single.PlanRef().Fingerprint(), p.Fingerprint()))
	}
	reload, err := core.NewFromPlan(p, opts...)
	if err != nil {
		return nil, fail("runner from decoded plan: " + err.Error())
	}
	return reload, nil
}

// Close releases the engine pool.
func (c *checker) Close() {
	if c.eng != nil {
		c.eng.Close()
	}
}

// starts returns the start states checked per input: the machine's own
// start plus one other (when the machine has more than one state).
func (c *checker) starts() []fsm.State {
	s := c.d.Start()
	if c.d.NumStates() == 1 {
		return []fsm.State{s}
	}
	return []fsm.State{s, fsm.State((int(s) + 1) % c.d.NumStates())}
}

// divergence assembles a populated Divergence for this checker.
func (c *checker) divergence(check, strategy string, input []byte, start, want, got fsm.State, detail string) *Divergence {
	return &Divergence{
		Check: check, Strategy: strategy,
		Machine: c.d, MachineLabel: c.label,
		Input: input, Start: start, Want: want, Got: got,
		Detail: detail,
	}
}

// check runs every configured cross-check of one input and returns the
// first divergence, or nil when all surfaces agree.
func (c *checker) check(input []byte) *Divergence {
	for _, start := range c.starts() {
		want := OracleFinal(c.d, input, start)
		for _, s := range c.strategies {
			if dv := c.checkStrategy(s, input, start, want); dv != nil {
				return dv
			}
		}
		if dv := c.checkEngine(input, start, want); dv != nil {
			return dv
		}
		if dv := c.checkSpeculative(input, start, want); dv != nil {
			return dv
		}
		if dv := c.checkTransduce(input, start); dv != nil {
			return dv
		}
	}
	return c.checkVectors(input)
}

// checkSpeculative compares the speculative lane against the oracle,
// both with the default guess and with a poisoned one that forces
// mispredict re-runs, and verifies the stats invariants (at most
// chunks-1 speculated chunks can miss; a hit run re-runs no bytes).
func (c *checker) checkSpeculative(input []byte, start, want fsm.State) *Divergence {
	for _, probe := range []struct {
		name string
		r    *speculative.Runner
	}{
		{"speculative-final", c.spec},
		{"speculative-mispredict", c.specBad},
	} {
		got, stats := probe.r.Final(input, start)
		if got != want {
			return c.divergence(probe.name, "", input, start, want, got,
				fmt.Sprintf("guess=%d procs=%d chunks=%d misspeculated=%d",
					probe.r.Guess(), c.cfg.Procs, stats.Chunks, stats.Misspeculated))
		}
		if stats.Misspeculated > stats.Chunks-1 || (stats.Misspeculated == 0 && stats.ReRunBytes != 0) {
			return c.divergence(probe.name, "", input, start, want, got,
				fmt.Sprintf("impossible stats %+v", stats))
		}
	}
	// The context path must agree too (the engine lane runs through it).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, _, err := c.spec.FinalCtx(ctx, input, start)
	if err != nil {
		return c.divergence("speculative-final", "", input, start, want, got,
			"unexpected ctx error: "+err.Error())
	}
	if got != want {
		return c.divergence("speculative-final", "", input, start, want, got, "ctx path")
	}
	return nil
}

// checkStrategy compares one strategy's whole surface — single-core,
// multicore, context-folded, chunked, serialized-plan, and (for small
// machines) full composition vectors — against the oracle.
func (c *checker) checkStrategy(s core.Strategy, input []byte, start, want fsm.State) *Divergence {
	name := s.String()
	if got := c.singles[s].Final(input, start); got != want {
		return c.divergence("strategy-final", name, input, start, want, got, "single-core")
	}
	if got := c.multis[s].Final(input, start); got != want {
		return c.divergence("multicore-final", name, input, start, want, got,
			fmt.Sprintf("procs=%d min_chunk=%d", c.cfg.Procs, c.cfg.MinChunk))
	}
	// A cancellable (never canceled) context forces the block-folded
	// entry points on both lanes.
	ctx, cancel := context.WithCancel(context.Background())
	gotSingle, errS := c.singles[s].FinalCtx(ctx, input, start)
	gotMulti, errM := c.multis[s].FinalCtx(ctx, input, start)
	cancel()
	if errS != nil || errM != nil {
		return c.divergence("ctx-final", name, input, start, want, gotSingle,
			fmt.Sprintf("unexpected error: single=%v multi=%v", errS, errM))
	}
	if gotSingle != want {
		return c.divergence("ctx-final", name, input, start, want, gotSingle, "single-core fold")
	}
	if gotMulti != want {
		return c.divergence("ctx-final", name, input, start, want, gotMulti, "multicore fold")
	}
	if dv := c.checkChunked(s, input, start, want); dv != nil {
		return dv
	}
	if r := c.reloads[s]; r != nil {
		if got := r.Final(input, start); got != want {
			return c.divergence("plan-roundtrip", name, input, start, want, got, "reloaded plan disagrees")
		}
	}
	return nil
}

// checkVectors compares full composition vectors — the phase 1
// quantity — on both lanes against |Q| independent oracle runs, for
// machines small enough that the sweep stays cheap.
func (c *checker) checkVectors(input []byte) *Divergence {
	if c.d.NumStates() > c.cfg.MaxVectorStates {
		return nil
	}
	wantVec := OracleVector(c.d, input)
	for _, s := range c.strategies {
		for _, r := range []*core.Runner{c.singles[s], c.multis[s]} {
			got := r.CompositionVector(input)
			for q, w := range wantVec {
				if got[q] != w {
					return c.divergence("composition-vector", s.String(), input, fsm.State(q), w, got[q],
						fmt.Sprintf("vector entry %d (procs=%d)", q, r.Procs()))
				}
			}
		}
	}
	return nil
}

// checkChunked runs the Figure 5 decomposition with a scalar phase 3
// and verifies three things at once: the final state matches the
// oracle, the chunks passed to phase 3 tile the input exactly, and
// every chunk's resolved start state is the oracle state at its
// offset — i.e. phases 1–2 recovered the true prefix composition.
func (c *checker) checkChunked(s core.Strategy, input []byte, start, want fsm.State) *Divergence {
	type seg struct {
		off, n int
		ok     bool
	}
	var mu sync.Mutex
	var segs []seg
	got := c.multis[s].RunChunked(input, start, func(off int, chunk []byte, st fsm.State) fsm.State {
		okStart := OracleFinal(c.d, input[:off], start) == st
		mu.Lock()
		segs = append(segs, seg{off: off, n: len(chunk), ok: okStart})
		mu.Unlock()
		return OracleFinal(c.d, chunk, st)
	})
	name := s.String()
	if got != want {
		return c.divergence("chunked-final", name, input, start, want, got, "RunChunked")
	}
	if len(input) == 0 {
		return nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].off < segs[j].off })
	pos := 0
	for _, g := range segs {
		if g.off != pos || g.n <= 0 {
			return c.divergence("chunked-coverage", name, input, start, want, got,
				fmt.Sprintf("chunk at offset %d (len %d), expected offset %d", g.off, g.n, pos))
		}
		if !g.ok {
			return c.divergence("chunked-coverage", name, input, start, want, got,
				fmt.Sprintf("chunk at offset %d started from a state that is not the oracle prefix state", g.off))
		}
		pos += g.n
	}
	if pos != len(input) {
		return c.divergence("chunked-coverage", name, input, start, want, got,
			fmt.Sprintf("chunks cover %d of %d bytes", pos, len(input)))
	}
	return nil
}

// checkEngine runs the input through the batch engine once per
// registered strategy and verifies the result and the dispatch-lane
// decision.
func (c *checker) checkEngine(input []byte, start, want fsm.State) *Divergence {
	if c.eng == nil {
		return nil
	}
	wantLane := len(input) >= c.cfg.LargeInput && c.cfg.Procs > 1
	for _, s := range c.strategies {
		res := c.eng.Run(context.Background(), engine.Job{
			Machine: s.String(), Input: input, Start: start, HasStart: true,
		})
		if res.Err != nil {
			return c.divergence("engine-final", s.String(), input, start, want, res.Final,
				"engine error: "+res.Err.Error())
		}
		if res.Final != want {
			return c.divergence("engine-final", s.String(), input, start, want, res.Final, "")
		}
		if wantAcc := c.d.Accepting(want); res.Accepts != wantAcc {
			return c.divergence("engine-final", s.String(), input, start, want, res.Final,
				fmt.Sprintf("accepts=%v, oracle accepts=%v", res.Accepts, wantAcc))
		}
		if res.Multicore != wantLane {
			return c.divergence("engine-lane", s.String(), input, start, want, res.Final,
				fmt.Sprintf("multicore=%v for %d bytes, threshold %d", res.Multicore, len(input), c.cfg.LargeInput))
		}
	}
	return nil
}

// checkFold runs one long input — several 64 KiB fold blocks — through
// the Auto-resolved strategy's context path on both lanes, so the
// carried-state block folding (and its multicore chunk variant) is
// compared against the oracle at realistic lengths. One probe per
// machine: the oracle pass dominates the cost.
func (c *checker) checkFold(rngInput []byte) *Divergence {
	if len(c.strategies) == 0 {
		return nil
	}
	// Prefer an enumerative strategy: folding scalar-vs-scalar proves
	// nothing.
	s := c.strategies[0]
	for _, cand := range c.strategies {
		if cand == core.Convergence {
			s = cand
			break
		}
		if cand != core.Sequential {
			s = cand
		}
	}
	start := c.d.Start()
	want := OracleFinal(c.d, rngInput, start)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, r := range []*core.Runner{c.singles[s], c.multis[s]} {
		got, err := r.FinalCtx(ctx, rngInput, start)
		if err != nil {
			return c.divergence("ctx-final", s.String(), rngInput, start, want, got,
				"fold probe error: "+err.Error())
		}
		if got != want {
			return c.divergence("ctx-final", s.String(), rngInput, start, want, got,
				fmt.Sprintf("fold probe, procs=%d", r.Procs()))
		}
	}
	return nil
}

// Check runs the whole differential suite — every oracle check plus
// the metamorphic properties — for one machine over the given inputs,
// returning the first divergence or nil.
func Check(gm GeneratedMachine, inputs [][]byte, cfg Config) *Divergence {
	var tm Timings
	return checkTimed(gm, inputs, cfg, &tm)
}

// CheckInput runs the differential suite for a single (machine, input)
// pair — the reproduction primitive Shrink and the fuzz targets use.
func CheckInput(d *fsm.DFA, input []byte, cfg Config) *Divergence {
	c, dv := newChecker(d, "", cfg)
	if dv != nil {
		return dv
	}
	defer c.Close()
	if dv := c.check(input); dv != nil {
		return dv
	}
	return c.checkSplit(input)
}

// pickLongest returns the longest input of the set (the one most
// likely to engage the multicore decomposition).
func pickLongest(inputs [][]byte) []byte {
	var best []byte
	for _, in := range inputs {
		if len(in) > len(best) {
			best = in
		}
	}
	return best
}

// foldProbe tiles the longest generated input out to foldProbeLen so
// the probe crosses several 64 KiB fold blocks while staying inside
// the machine's alphabet.
func foldProbe(inputs [][]byte) []byte {
	pat := pickLongest(inputs)
	probe := make([]byte, foldProbeLen)
	if len(pat) == 0 {
		return probe // all-zero: symbol 0 is valid in every alphabet
	}
	for i := 0; i < len(probe); i += len(pat) {
		copy(probe[i:], pat)
	}
	return probe
}

// StrategyNames renders cfg's strategy list for reports.
func StrategyNames(cfg Config) []string {
	names := make([]string, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		names[i] = s.String()
	}
	return names
}
