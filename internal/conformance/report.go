package conformance

import (
	"bytes"
	"encoding/base64"

	"dpfsm/internal/fsm"
)

// Soak reporting: the JSON artifact cmd/fsmverify emits and CI
// archives. Everything needed to reproduce a failure out-of-band is in
// the report — the seed, the machine index, and the (shrunk) machine
// itself in the fsm wire encoding.

// DivergenceReport is the JSON-encodable form of a Divergence.
type DivergenceReport struct {
	Check    string `json:"check"`
	Strategy string `json:"strategy,omitempty"`
	Regime   string `json:"regime,omitempty"`
	States   int    `json:"states"`
	Symbols  int    `json:"symbols"`
	// Machine is the base64 fsm wire encoding of the (possibly shrunk)
	// machine; decode with fsm.ReadDFA.
	Machine string `json:"machine_b64,omitempty"`
	// Input is the base64 failing input.
	Input  string `json:"input_b64"`
	Start  int    `json:"start"`
	Want   int    `json:"want"`
	Got    int    `json:"got"`
	Detail string `json:"detail,omitempty"`
	Shrunk bool   `json:"shrunk"`
	// Summary is the human-readable one-liner (Divergence.Error).
	Summary string `json:"summary"`
}

// Report is the outcome of one Soak run.
type Report struct {
	OK       bool  `json:"ok"`
	Seed     int64 `json:"seed"`
	Machines int   `json:"machines"`
	// MachinesRun counts machines actually checked (== Machines unless a
	// divergence stopped the soak early).
	MachinesRun int `json:"machines_run"`
	Inputs      int `json:"inputs"`
	// Regimes counts checked machines per generator regime.
	Regimes    map[string]int `json:"regimes"`
	Strategies []string       `json:"strategies"`
	// FailedIndex is the machine index that diverged, -1 when OK.
	FailedIndex int               `json:"failed_index"`
	Divergence  *DivergenceReport `json:"divergence,omitempty"`
}

// reportDivergence converts dv for JSON.
func reportDivergence(dv *Divergence) *DivergenceReport {
	if dv == nil {
		return nil
	}
	r := &DivergenceReport{
		Check:    dv.Check,
		Strategy: dv.Strategy,
		Regime:   dv.MachineLabel,
		Input:    base64.StdEncoding.EncodeToString(dv.Input),
		Start:    int(dv.Start),
		Want:     int(dv.Want),
		Got:      int(dv.Got),
		Detail:   dv.Detail,
		Shrunk:   dv.Shrunk,
		Summary:  dv.Error(),
	}
	if dv.Machine != nil {
		r.States = dv.Machine.NumStates()
		r.Symbols = dv.Machine.NumSymbols()
		var buf bytes.Buffer
		if _, err := dv.Machine.WriteTo(&buf); err == nil {
			r.Machine = base64.StdEncoding.EncodeToString(buf.Bytes())
		}
	}
	return r
}

// DecodeMachine recovers the DFA from a report's machine_b64 field.
func DecodeMachine(b64 string) (*fsm.DFA, error) {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, err
	}
	return fsm.ReadDFA(bytes.NewReader(raw))
}

// Soak checks n seeded random machines under cfg and reports the first
// divergence, minimized. progress, when non-nil, is called before each
// machine with its index and regime. Deterministic for a given
// (n, seed, cfg).
func Soak(n int, seed int64, cfg Config, progress func(i int, gm GeneratedMachine)) Report {
	rep, _ := SoakTimed(n, seed, cfg, progress)
	return rep
}
