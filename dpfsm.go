package dpfsm

import (
	"context"

	"dpfsm/internal/adaptive"
	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/fsm"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/regex"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// This file is the stable v1 public surface: type aliases and thin
// constructors over the internal packages, so programs depend on
// `dpfsm` alone while the implementation keeps moving underneath.

// Machine substrate (internal/fsm).
type (
	// DFA is a dense table-driven finite-state machine; transitions are
	// stored column-major (one []State per input symbol) so the
	// data-parallel strategies can gather whole columns.
	DFA = fsm.DFA
	// State indexes a DFA state; machines are capped at 65536 states.
	State = fsm.State
	// Stats summarizes the static structure of a DFA (state count,
	// per-symbol range widths, convergence profile).
	Stats = fsm.Stats
	// Phi observes one (position, symbol, state) step of a chunked run.
	Phi = fsm.Phi
)

// NewDFA returns an empty machine with the given dimensions; fill it
// with SetTransition/SetColumn and mark accepting states before use.
func NewDFA(numStates, numSymbols int) (*DFA, error) { return fsm.New(numStates, numSymbols) }

// Transduction (internal/fsm + internal/core). A Transducer is a DFA
// with an output table λ — per state (Moore) or per (state, symbol)
// (Mealy) — and a transducing run emits one output symbol per input
// byte. The parallel lanes replay each chunk from the start state the
// composition fold resolves, so every lane's output tape and span list
// are byte-identical to a sequential run.
type (
	// Transducer is an output-bearing machine: a DFA plus λ.
	Transducer = fsm.Transducer
	// Output is one output-alphabet symbol; OutputNone marks gaps.
	Output = fsm.Output
	// Kind classifies a machine: acceptor, moore, or mealy.
	Kind = fsm.Kind
	// Span is a maximal run of equal non-OutputNone outputs:
	// input[Start:End] all emitted Out. Token and match spans take this
	// shape.
	Span = core.Span
)

// Machine kinds and the gap output symbol.
const (
	KindAcceptor = fsm.KindAcceptor
	KindMoore    = fsm.KindMoore
	KindMealy    = fsm.KindMealy
	OutputNone   = fsm.OutputNone
)

// NewMoore attaches a per-state output table to d (λ: Q → Γ with
// numOutputs symbols); fill it with SetMooreOutput.
func NewMoore(d *DFA, numOutputs int) (*Transducer, error) { return fsm.NewMoore(d, numOutputs) }

// NewMealy attaches a per-(state, symbol) output table to d
// (λ: Q × Σ → Γ); fill it with SetMealyOutput.
func NewMealy(d *DFA, numOutputs int) (*Transducer, error) { return fsm.NewMealy(d, numOutputs) }

// CompileTransducer compiles an output-bearing machine into a Plan
// whose fingerprint covers λ; runners built from it serve Transduce as
// well as the plain accept/final surface, and the plan round-trips
// through MarshalBinary/UnmarshalPlan like any other.
func CompileTransducer(t *Transducer, opts ...Option) (*Plan, error) {
	return core.CompileTransducer(t, opts...)
}

// Transduce runs input through a transducer plan's runner from start
// and returns the span list a sequential replay would produce, plus
// the final state. The runner must come from CompileTransducer (or a
// decoded transducer plan); acceptor runners return an error.
func Transduce(r *Runner, input []byte, start State) ([]Span, State, error) {
	return r.TransduceSpans(input, start)
}

// Regex front end (internal/regex).

// CompileOptions configures Compile; the zero value gives Snort-style
// "input contains a match" semantics over the full byte alphabet.
type CompileOptions = regex.Options

// Compile translates a regular expression into a DFA ready for
// NewRunner or Engine.Register.
func Compile(pattern string, opts CompileOptions) (*DFA, error) {
	return regex.Compile(pattern, opts)
}

// MustCompile is Compile but panics on error, for package-level
// machine variables.
func MustCompile(pattern string, opts CompileOptions) *DFA {
	return regex.MustCompile(pattern, opts)
}

// Single-machine execution (internal/core).
type (
	// Runner executes one DFA with a chosen data-parallel strategy. It
	// is safe for concurrent use and recycles scratch vectors across
	// runs.
	Runner = core.Runner
	// Stream is an io.Writer that folds written bytes through a Runner
	// incrementally; see Runner.NewStream.
	Stream = core.Stream
	// Option configures a Runner at construction.
	Option = core.Option
	// Strategy selects the execution algorithm; see the constants.
	Strategy = core.Strategy
)

// Execution strategies, in increasing order of paper machinery:
// Sequential is the scalar baseline; Base and BaseILP are the
// enumerative gather loops (§3); Convergence adds the Figure 7
// active-set narrowing; RangeCoalesced and RangeConvergence add the
// Figure 10/11 per-symbol name tables.
//
// Auto is the default and the recommended choice: at compile time it
// picks a concrete strategy from the machine's static Stats, and — on
// an Engine with a perf-profile store attached — the adaptive layer
// then re-evaluates the dispatch lane from observed behaviour as
// traffic accumulates. Auto is a request, not a strategy: it always
// resolves to a concrete strategy before execution and never appears
// in a compiled Plan or a Result.
const (
	Auto             = core.Auto
	Sequential       = core.Sequential
	Base             = core.Base
	BaseILP          = core.BaseILP
	Convergence      = core.Convergence
	RangeCoalesced   = core.RangeCoalesced
	RangeConvergence = core.RangeConvergence
)

// NewRunner builds a Runner for d (compile + execute in one call).
func NewRunner(d *DFA, opts ...Option) (*Runner, error) { return core.New(d, opts...) }

// Compile/execute split (internal/core + internal/plan). A Plan is
// the immutable compiled artifact of one (machine, strategy) pair —
// strategy tables, shuffle constants, the auto-selection decision —
// separable from the mutable Runner that executes it. Compile once,
// run with any number of Runners, persist with MarshalBinary, reload
// with UnmarshalPlan.
type Plan = core.Plan

// CompilePlan compiles d into an immutable execution plan; runtime
// options are ignored, only WithStrategy matters here.
func CompilePlan(d *DFA, opts ...Option) (*Plan, error) { return core.CompilePlan(d, opts...) }

// NewRunnerFromPlan builds a Runner over an existing plan with zero
// table construction. A WithStrategy option, if present, must match
// the plan's resolved strategy.
func NewRunnerFromPlan(p *Plan, opts ...Option) (*Runner, error) { return core.NewFromPlan(p, opts...) }

// UnmarshalPlan decodes a plan serialized with Plan.MarshalBinary,
// revalidating the embedded machine and bounds-checking every table.
func UnmarshalPlan(data []byte) (*Plan, error) { return core.UnmarshalPlan(data) }

// PlanKey computes the cache fingerprint CompilePlan would assign,
// without building tables — the membership probe for plan caches.
func PlanKey(d *DFA, opts ...Option) (string, error) { return core.PlanKey(d, opts...) }

// WithStrategy pins the execution strategy instead of Auto selection.
func WithStrategy(s Strategy) Option { return core.WithStrategy(s) }

// WithProcs sets the multicore width for the Figure 5 phase split
// (0 = NumCPU, 1 = single-core only).
func WithProcs(p int) Option { return core.WithProcs(p) }

// WithConvCheckEvery sets the convergence-check cadence in symbols.
func WithConvCheckEvery(k int) Option { return core.WithConvCheckEvery(k) }

// WithMinChunk sets the smallest per-core chunk worth parallelizing.
func WithMinChunk(n int) Option { return core.WithMinChunk(n) }

// WithTelemetry attaches a metrics sink to the Runner.
func WithTelemetry(m *Metrics) Option { return core.WithTelemetry(m) }

// ParseStrategy resolves a strategy by name, case-insensitively.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Strategies lists the valid strategy names in order.
func Strategies() []string { return core.Strategies() }

// Batch execution (internal/engine).
type (
	// Engine runs batches of (machine, input) jobs on a bounded worker
	// pool with pooled runners, adaptive single-vs-multicore dispatch,
	// and per-job context cancellation.
	Engine = engine.Engine
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// Machine is a DFA registered with an Engine.
	Machine = engine.Machine
	// Job names a machine and carries one input.
	Job = engine.Job
	// Result reports one job's outcome.
	Result = engine.Result
	// TransduceResult reports one Engine.Transduce call's outcome: the
	// dispatch record plus the emitted spans.
	TransduceResult = engine.TransduceResult
	// BatchStats aggregates one RunBatch call.
	BatchStats = engine.BatchStats
	// PlanCache is a bounded LRU of compiled plans keyed by
	// fingerprint; engines use one so registrations reuse compiled
	// artifacts instead of rebuilding tables.
	PlanCache = engine.PlanCache
	// PlanCacheStats reports a cache's hit/miss/eviction counters.
	PlanCacheStats = engine.PlanCacheStats
)

// Engine failure modes, returned inside Result.Err or from Submit.
var (
	ErrClosed         = engine.ErrClosed
	ErrUnknownMachine = engine.ErrUnknownMachine
	ErrBadStart       = engine.ErrBadStart
	// ErrQueueFull is returned by TrySubmit when the engine sheds load.
	ErrQueueFull = engine.ErrQueueFull
	// ErrNotTransducer is returned by Engine.Transduce on machines
	// registered without an output table.
	ErrNotTransducer = engine.ErrNotTransducer
)

// Engine dispatch lanes, reported in Result.Lane: "single" (batch-
// level parallelism), "multicore" (the paper's Figure 5 phase split),
// and "speculative" (guessed chunk start states with scalar re-run on
// mispredict).
const (
	LaneSingle      = engine.LaneSingle
	LaneMulticore   = engine.LaneMulticore
	LaneSpeculative = engine.LaneSpeculative
)

// NewEngine builds and starts a batch engine; Close it when done.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithWorkers sets the engine's worker-pool size (default NumCPU).
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithQueueDepth bounds the job queue; Submit blocks (backpressure)
// when it is full.
func WithQueueDepth(n int) EngineOption { return engine.WithQueueDepth(n) }

// WithLargeInput sets the byte threshold at which jobs leave the
// single-core batch lane for the multicore phase split.
func WithLargeInput(n int) EngineOption { return engine.WithLargeInput(n) }

// WithEngineProcs sets the multicore width of the engine's large-input
// lane (0 = NumCPU).
func WithEngineProcs(p int) EngineOption { return engine.WithProcs(p) }

// WithEngineTelemetry attaches a metrics sink to the engine and every
// runner it builds.
func WithEngineTelemetry(m *Metrics) EngineOption { return engine.WithTelemetry(m) }

// NewPlanCache builds a plan cache bounded to max entries (max <= 0
// selects the default); m, when non-nil, receives hit/miss/eviction
// telemetry.
func NewPlanCache(max int, m *Metrics) *PlanCache { return engine.NewPlanCache(max, m) }

// WithPlanCache shares a plan cache across engines (or between an
// engine and a direct CompilePlan caller); the default is a private
// per-engine cache.
func WithPlanCache(pc *PlanCache) EngineOption { return engine.WithPlanCache(pc) }

// Adaptive execution (internal/perfprofile + internal/adaptive).
// Attaching a perf-profile store to an engine closes the selection
// loop: every job's lane, throughput, and speculation outcome feeds a
// per-machine profile, and the engine's adaptive selector re-picks
// each machine's large-input lane (multicore vs speculative) from
// that history, with hysteresis. Without a store the engine keeps its
// static size-based dispatch.
type (
	// PerfProfileStore aggregates per-machine observed performance and
	// optionally persists it next to serialized plans.
	PerfProfileStore = perfprofile.Store
	// PerfProfile is one machine's accumulated performance history:
	// per-lane throughput, hot final states, speculation outcomes.
	PerfProfile = perfprofile.Profile
	// Selection is the adaptive dispatcher's current decision for one
	// machine: the lane, the resolved strategy, and a human-readable
	// reason. Machine.Selection returns the live value.
	Selection = adaptive.Selection
)

// NewPerfProfileStore builds a profile store; dir may be empty for a
// purely in-memory store, or name a directory (typically the plan
// cache's) where profiles persist across restarts.
func NewPerfProfileStore(dir string) *PerfProfileStore { return perfprofile.NewStore(dir) }

// WithEnginePerfProfiles attaches a perf-profile store to the engine,
// enabling profile-driven adaptive lane selection (including the
// speculative lane) for every registered machine.
func WithEnginePerfProfiles(s *PerfProfileStore) EngineOption { return engine.WithPerfProfiles(s) }

// WithEngineTraceSink makes the engine create a per-job Trace for every
// job whose context does not already carry one, delivering completed
// traces to s. Jobs traced upstream (WithTrace) keep their own trace
// and are not delivered — the creator of a trace owns its recording.
func WithEngineTraceSink(s TraceSink) EngineOption { return engine.WithTraceSink(s) }

// Request-scoped tracing (internal/trace). Where Metrics aggregates
// across all runs, a Trace explains one: it carries a W3C-compatible
// trace ID through a job's lifecycle and collects timestamped spans —
// queue wait, dispatch-lane decision, per-chunk convergence profiles.
// Tracing is strictly opt-in and zero-cost when absent: contexts
// without a trace run the uninstrumented fast paths.
type (
	// Trace is one request-scoped execution trace; it marshals to a
	// nested span-tree JSON document.
	Trace = trace.Trace
	// TraceSpan is one timestamped operation within a Trace; a nil
	// *TraceSpan is inert, so instrumentation runs unconditionally.
	TraceSpan = trace.Span
	// TraceSink consumes completed traces (the flight recorder, or any
	// custom exporter).
	TraceSink = trace.Sink
	// TraceRecorder is the built-in flight recorder: a fixed-capacity
	// lock-free ring of the most recently completed traces.
	TraceRecorder = trace.Recorder
)

// NewTrace starts a trace with a fresh random W3C trace ID.
func NewTrace() *Trace { return trace.New() }

// NewTraceFromParent starts a trace continuing an inbound W3C
// traceparent header; malformed headers fall back to a fresh ID.
func NewTraceFromParent(traceparent string) *Trace { return trace.FromParent(traceparent) }

// NewTraceRecorder builds a flight recorder retaining up to capacity
// completed traces (capacity <= 0 selects the default of 256).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// WithTrace returns ctx carrying t; Runner and Engine calls made with
// the returned context emit their span decomposition into t.
func WithTrace(ctx context.Context, t *Trace) context.Context { return trace.NewContext(ctx, t) }

// TraceFromContext returns the trace riding ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace { return trace.FromContext(ctx) }

// Telemetry (internal/telemetry).
type (
	// Metrics is the zero-value-ready telemetry sink; a nil *Metrics
	// disables collection at negligible cost.
	Metrics = telemetry.Metrics
	// Snapshot is a consistent point-in-time read of a Metrics.
	Snapshot = telemetry.Snapshot
)
