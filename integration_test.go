package dpfsm

// Cross-module integration tests: full pipelines wired the way the
// cmd/ binaries and examples use them, with every independent
// implementation (semiring formulations, NFA simulation, switch
// tokenizer, bit-walking decoder) acting as an oracle for the
// enumerative runner.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/huffman"
	"dpfsm/internal/regex"
	"dpfsm/internal/semiring"
	"dpfsm/internal/workload"
)

func TestRegexPipelineEndToEnd(t *testing.T) {
	traffic := workload.WikiText(201, 1<<18)
	copy(traffic[1<<17:], []byte("UNION SELECT secret FROM users"))

	pattern := `UNION\s+SELECT`
	d, err := regex.Compile(pattern, regex.Options{CaseInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}

	// Serialize → deserialize must preserve behavior.
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := fsm.ReadDFA(&buf)
	if err != nil {
		t.Fatal(err)
	}

	nfaM, err := regex.CompileNFA(pattern, regex.Options{CaseInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, strat := range []core.Strategy{core.Sequential, core.Convergence, core.RangeCoalesced} {
		for _, procs := range []int{1, 3} {
			r, err := core.New(d2, core.WithStrategy(strat), core.WithProcs(procs), core.WithMinChunk(1024))
			if err != nil {
				t.Fatal(err)
			}
			if !r.Accepts(traffic) {
				t.Fatalf("%v procs=%d: should match the injected payload", strat, procs)
			}
		}
	}
	if !nfaM.Match(traffic) {
		t.Fatal("NFA oracle disagrees: no match")
	}
	clean := workload.WikiText(202, 1<<16)
	r, _ := core.New(d2)
	if r.Accepts(clean) != nfaM.Match(clean) {
		t.Fatal("NFA oracle and runner disagree on clean traffic")
	}
}

func TestAllStrategiesAgreeWithSemiringOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	for iter := 0; iter < 10; iter++ {
		d := fsm.RandomConverging(rng, 5+rng.Intn(40), 4, 6, 0.3)
		in := d.RandomInput(rng, 300)

		matVec := make([]fsm.State, d.NumStates())
		for q := range matVec {
			matVec[q] = semiring.MatrixFinal(d, in, fsm.State(q))
		}
		funcVec := semiring.FuncProduct(d, in, 64)

		for _, strat := range []core.Strategy{core.Base, core.BaseILP, core.Convergence, core.RangeCoalesced} {
			r, err := core.New(d, core.WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			vec := r.CompositionVector(in)
			for q := range vec {
				if vec[q] != matVec[q] || vec[q] != funcVec[q] {
					t.Fatalf("iter %d %v: state %d disagrees with semiring oracles", iter, strat, q)
				}
			}
		}
	}
}

func TestHuffmanPipelineEndToEnd(t *testing.T) {
	book := workload.Book(301, 1<<18)
	codec, err := huffman.FromSample(book)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := codec.DecoderFSM()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.Encode(book)
	if err != nil {
		t.Fatal(err)
	}

	bitwalk := codec.DecodeBitwalk(enc)
	seq := dec.DecodeSequential(enc)
	coal := dec.NewCoalescedDecoder().Decode(enc)
	par, err := dec.DecodeParallel(enc, core.WithProcs(3), core.WithMinChunk(1024))
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string][]byte{
		"bitwalk": bitwalk, "sequential": seq, "coalesced": coal, "parallel": par,
	} {
		if !bytes.Equal(out, book) {
			t.Fatalf("%s decoder did not round-trip (%d vs %d bytes)", name, len(out), len(book))
		}
	}

	// The decoder machine itself survives serialization.
	var buf bytes.Buffer
	if _, err := dec.ByteMachine.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := fsm.ReadDFA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fsm.Equivalent(dec.ByteMachine, m2) {
		t.Fatal("byte machine changed across serialization")
	}
}

func TestHTMLPipelineEndToEnd(t *testing.T) {
	page := workload.HTMLPage(401, 1<<19)
	base := htmltok.TokenizeSwitch(page)

	tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(4), core.WithMinChunk(512))
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.TokenizeTable(page); !reflect.DeepEqual(got, base) {
		t.Fatal("table tokenizer diverged from switch baseline")
	}
	if got := tk.Tokenize(page); !reflect.DeepEqual(got, base) {
		t.Fatal("parallel tokenizer diverged from switch baseline")
	}

	// The minimized tokenizer accepts the same language (and tells us
	// whether all 27 states are distinguishable).
	min := tk.Machine().Minimize()
	if !fsm.Equivalent(tk.Machine(), min) {
		t.Fatal("minimization changed the tokenizer language")
	}
}

func TestRuleSetOverGeneratedCorpus(t *testing.T) {
	specs := workload.SnortRegexes(77, 25)
	rules := make([]regex.Rule, len(specs))
	for i, s := range specs {
		rules[i] = regex.Rule{
			Name:    s.Pattern,
			Pattern: s.Pattern,
			Options: regex.Options{CaseInsensitive: s.CaseInsensitive},
		}
	}
	rs, err := regex.CompileRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	traffic := workload.WikiText(78, 1<<16)
	got := rs.Scan(traffic, 0)
	if len(got) != len(rules) {
		t.Fatalf("scan returned %d results", len(got))
	}
	// Verdicts must agree with per-rule NFA matchers.
	for i, m := range got {
		nm, err := regex.CompileNFA(rules[i].Pattern, rules[i].Options)
		if err != nil {
			t.Fatal(err)
		}
		if nm.Match(traffic) != m.Matched {
			t.Fatalf("rule %q: ruleset=%v, NFA oracle=%v", rules[i].Name, m.Matched, nm.Match(traffic))
		}
	}
}

func TestStreamingRegexScan(t *testing.T) {
	d, err := regex.Compile(`wget http`, regex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(d)
	if err != nil {
		t.Fatal(err)
	}
	payload := workload.WikiText(501, 1<<17)
	copy(payload[100_000:], []byte("... wget http://evil ..."))

	s := r.NewStream(nil, 4096)
	if _, err := s.ReadFrom(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if !s.Accepting() {
		t.Fatal("stream missed the payload")
	}
	if s.Accepting() != r.Accepts(payload) {
		t.Fatal("stream and batch disagree")
	}
}
