package dpfsm

// One testing.B benchmark per figure of the paper's evaluation (the
// paper has no numbered tables). These mirror cmd/fsmbench with
// fixed, benchmark-friendly sizes; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison. The
// corpus and inputs are deterministic (fixed seeds), so runs are
// directly comparable.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpfsm/internal/analysis"
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/huffman"
	"dpfsm/internal/regex"
	"dpfsm/internal/semiring"
	"dpfsm/internal/speculative"
	"dpfsm/internal/workload"
	"dpfsm/internal/xmltok"
)

// ---- shared fixtures, built once ----

var fixtures struct {
	once     sync.Once
	corpus   []*fsm.DFA
	wiki     []byte // 1 MiB natural text
	html     []byte // 2 MiB page
	bookFSMs []*huffman.DecoderFSM
	bookEnc  huffman.Encoded
	bookDec  *huffman.DecoderFSM
	bookCoal *huffman.CoalescedDecoder
	bookCod  *huffman.Codec
}

func setup(b *testing.B) {
	b.Helper()
	fixtures.once.Do(func() {
		specs := workload.SnortRegexes(1, 120)
		fixtures.corpus, _ = workload.CompileCorpus(specs, 20000)
		fixtures.wiki = workload.WikiText(2, 1<<20)
		fixtures.html = workload.HTMLPage(3, 2<<20)

		for bk := 0; bk < 6; bk++ {
			text := workload.Book(int64(1000+bk), 1<<17)
			c, err := huffman.FromSample(text)
			if err != nil {
				continue
			}
			f, err := c.DecoderFSM()
			if err != nil {
				continue
			}
			fixtures.bookFSMs = append(fixtures.bookFSMs, f)
		}

		// One payload codec for decode benches: trained on book 0 plus
		// the wiki payload so every byte is covered.
		text := append(workload.Book(1000, 1<<17), fixtures.wiki...)
		cod, err := huffman.FromSample(text)
		if err != nil {
			panic(err)
		}
		f, err := cod.DecoderFSM()
		if err != nil {
			panic(err)
		}
		enc, err := cod.Encode(fixtures.wiki)
		if err != nil {
			panic(err)
		}
		fixtures.bookCod = cod
		fixtures.bookDec = f
		fixtures.bookCoal = f.NewCoalescedDecoder()
		fixtures.bookEnc = enc
	})
	if len(fixtures.corpus) == 0 {
		b.Fatal("corpus failed to build")
	}
}

// pickMachine returns a corpus machine in the given state range.
func pickMachine(b *testing.B, loStates, hiStates, maxRange int) *fsm.DFA {
	b.Helper()
	for _, d := range fixtures.corpus {
		if d.NumStates() >= loStates && d.NumStates() <= hiStates && d.MaxRangeSize() <= maxRange {
			return d
		}
	}
	b.Skipf("no corpus machine with states in [%d,%d] range ≤ %d", loStates, hiStates, maxRange)
	return nil
}

// ---- Figure 6: gather microkernel ----

func BenchmarkFig6Gather(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const numTables = 256
	for _, mode := range []string{"nonsimd", "simd-emulated"} {
		for _, n := range []int{16, 64, 256} {
			for _, m := range []int{1, 8, 16, 64} {
				if m > n {
					continue
				}
				tables := make([][]byte, numTables)
				for i := range tables {
					t := make([]byte, n)
					for j := range t {
						t[j] = byte(rng.Intn(n))
					}
					tables[i] = t
				}
				s := make([]byte, m)
				b.Run(fmt.Sprintf("%s/m=%d/n=%d", mode, m, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						t := tables[i&(numTables-1)]
						if mode == "simd-emulated" {
							gather.SIMDInto(s, s, t)
						} else {
							gather.Into(s, s, t)
						}
					}
				})
			}
		}
	}
}

func BenchmarkFig6SequentialBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	const numTables = 256
	n := 256
	tables := make([][]byte, numTables)
	for i := range tables {
		t := make([]byte, n)
		for j := range t {
			t[j] = byte(rng.Intn(n))
		}
		tables[i] = t
	}
	var q byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q = tables[i&(numTables-1)][q]
	}
	_ = q
}

// ---- Figure 8: adversarial convergence exploration ----

func BenchmarkFig8Adversarial(b *testing.B) {
	setup(b)
	d := pickMachine(b, 10, 200, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AdversarialConvergence(d, 16, 1<<15)
	}
}

// ---- Figure 9: random-input convergence ----

func BenchmarkFig9RandomConvergence(b *testing.B) {
	setup(b)
	d := pickMachine(b, 10, 200, 256)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.RandomConvergence(d, rng, fixtures.wiki, 10, 500)
	}
}

// ---- Figure 12: corpus compilation and structure ----

func BenchmarkFig12CompileCorpus(b *testing.B) {
	specs := workload.SnortRegexes(12, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.CompileCorpus(specs, 20000)
	}
}

// ---- Figure 13: single-core strategies over the baseline ----

func BenchmarkFig13SingleCore(b *testing.B) {
	setup(b)
	input := fixtures.wiki[:1<<19]
	for _, tc := range []struct {
		name             string
		loS, hiS, maxRng int
	}{
		{"small", 4, 32, 16},
		{"medium", 33, 256, 256},
		{"large", 257, 20000, 1 << 30},
	} {
		d := pickMachine(b, tc.loS, tc.hiS, 1<<30)
		if d == nil {
			continue
		}
		for _, strat := range []core.Strategy{core.Sequential, core.Base, core.BaseILP, core.Convergence, core.RangeCoalesced, core.RangeConvergence} {
			if (strat == core.RangeCoalesced || strat == core.RangeConvergence) && d.MaxRangeSize() > 256 {
				continue
			}
			r, err := core.New(d, core.WithStrategy(strat))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s(n=%d)/%s", tc.name, d.NumStates(), strat), func(b *testing.B) {
				b.SetBytes(int64(len(input)))
				for i := 0; i < b.N; i++ {
					r.Final(input, d.Start())
				}
			})
		}
	}
}

// Ablation: the emulated shuffle/blend dataflow versus the scalar
// kernel on the same strategy (DESIGN.md's SIMD-substitution note).
func BenchmarkFig13EmulatedSIMDAblation(b *testing.B) {
	setup(b)
	d := pickMachine(b, 4, 64, 16)
	input := fixtures.wiki[:1<<18]
	for _, simd := range []bool{false, true} {
		r, err := core.New(d, core.WithStrategy(core.Convergence), core.WithEmulatedSIMD(simd))
		if err != nil {
			b.Fatal(err)
		}
		name := "scalar"
		if simd {
			name = "emulated-simd"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				r.Final(input, d.Start())
			}
		})
	}
}

// Ablation: convergence-check cadence (§5.2's "use factor sparingly").
func BenchmarkConvCheckCadenceAblation(b *testing.B) {
	setup(b)
	d := pickMachine(b, 16, 256, 256)
	input := fixtures.wiki[:1<<18]
	for _, k := range []int{1, 8, 64, 512} {
		r, err := core.New(d, core.WithStrategy(core.Convergence), core.WithConvCheckEvery(k))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("every=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				r.Final(input, d.Start())
			}
		})
	}
}

// ---- Figure 14: multicore scaling on Snort machines ----

func BenchmarkFig14Multicore(b *testing.B) {
	setup(b)
	d := pickMachine(b, 8, 64, 32)
	input := fixtures.wiki
	for _, procs := range []int{1, 2, 4} {
		r, err := core.New(d, core.WithStrategy(core.Convergence), core.WithProcs(procs))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				r.Final(input, d.Start())
			}
		})
	}
}

// ---- Figure 15: Huffman machine construction ----

func BenchmarkFig15HuffmanBuild(b *testing.B) {
	text := workload.Book(1500, 1<<17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := huffman.FromSample(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.DecoderFSM(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 16: Huffman single-core decoders ----

func BenchmarkFig16Huffman(b *testing.B) {
	setup(b)
	enc := fixtures.bookEnc
	b.Run("bitwalk", func(b *testing.B) {
		small := enc
		small.Data = enc.Data[:1<<16]
		small.NBits = len(small.Data) * 8
		small.NOut = small.NBits // ≥1 bit per symbol bounds the output
		b.SetBytes(int64(len(small.Data)))
		for i := 0; i < b.N; i++ {
			fixtures.bookCod.DecodeBitwalk(small)
		}
	})
	b.Run("sequential-unrolled", func(b *testing.B) {
		b.SetBytes(int64(len(enc.Data)))
		for i := 0; i < b.N; i++ {
			fixtures.bookDec.DecodeSequential(enc)
		}
	})
	b.Run("range-coalesced", func(b *testing.B) {
		b.SetBytes(int64(len(enc.Data)))
		for i := 0; i < b.N; i++ {
			fixtures.bookCoal.Decode(enc)
		}
	})
}

// ---- Figure 17: Huffman multicore decode ----

func BenchmarkFig17HuffmanMulticore(b *testing.B) {
	setup(b)
	enc := fixtures.bookEnc
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(enc.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := fixtures.bookDec.DecodeParallel(enc, core.WithProcs(procs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 18: HTML tokenization ----

func BenchmarkFig18HTMLTok(b *testing.B) {
	setup(b)
	input := fixtures.html
	b.Run("switch-baseline", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			htmltok.TokenizeSwitch(input)
		}
	})
	tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("table-sequential", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			tk.TokenizeTable(input)
		}
	})
	for _, procs := range []int{1, 2, 4} {
		ptk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(procs))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("parallel/threads=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				ptk.Tokenize(input)
			}
		})
	}
}

// Ablation for §5.3's byte-versus-word claim: identical gathers with
// byte-encoded names (16 lanes/reg) versus direct uint16 states
// (8 lanes/reg) in the emulated dataflow, plus the scalar kernels.
func BenchmarkByteVsWordGather(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	const n, m = 16, 16
	tb := make([]byte, n)
	tw := make([]uint16, n)
	for i := 0; i < n; i++ {
		v := rng.Intn(n)
		tb[i] = byte(v)
		tw[i] = uint16(v)
	}
	sb := make([]byte, m)
	sw := make([]uint16, m)
	b.Run("byte-emulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gather.SIMDInto(sb, sb, tb)
		}
	})
	b.Run("word-emulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gather.SIMDInto16(sw, sw, tw)
		}
	})
	b.Run("byte-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gather.Into(sb, sb, tb)
		}
	})
	b.Run("word-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gather.Into(sw, sw, tw)
		}
	})
}

// ---- §7 baselines: speculative parallelization & XML claim ----

func BenchmarkSpeculativeVsEnumerative(b *testing.B) {
	setup(b)
	d := pickMachine(b, 8, 64, 32)
	input := fixtures.wiki
	warm := input[:4096]
	for _, procs := range []int{2, 4} {
		sp := speculative.New(d, procs, warm)
		b.Run(fmt.Sprintf("speculative/procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				sp.Final(input, d.Start())
			}
		})
		r, err := core.New(d, core.WithStrategy(core.Convergence), core.WithProcs(procs))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("enumerative/procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				r.Final(input, d.Start())
			}
		})
	}
}

func BenchmarkXMLTok(b *testing.B) {
	// §7 claim: XML machines are one-shuffle-per-symbol small. The
	// HTML page generator's output is close enough to XML-shaped
	// markup for a lexing benchmark.
	setup(b)
	tk, err := xmltok.NewTokenizer(core.WithStrategy(core.Convergence))
	if err != nil {
		b.Fatal(err)
	}
	input := fixtures.html
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			tk.TokenizeSequential(input)
		}
	})
	for _, procs := range []int{2, 4} {
		ptk, err := xmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(procs))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("parallel/procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				ptk.Tokenize(input)
			}
		})
	}
}

func BenchmarkHuffmanParallelEncode(b *testing.B) {
	setup(b)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.SetBytes(int64(len(fixtures.wiki)))
			for i := 0; i < b.N; i++ {
				if _, err := fixtures.bookCod.ParallelEncode(fixtures.wiki, procs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRegexFinder(b *testing.B) {
	setup(b)
	f, err := regex.NewFinder(`wget http`, regex.Options{})
	if err != nil {
		b.Fatal(err)
	}
	input := append([]byte{}, fixtures.wiki...)
	copy(input[len(input)-2048:], []byte("... wget http://x ..."))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := f.Find(input); !ok {
			b.Fatal("lost the needle")
		}
	}
}

// ---- §2.2 baselines: semiring formulations ----

func BenchmarkSemiringBaselines(b *testing.B) {
	setup(b)
	d := pickMachine(b, 8, 64, 1<<30)
	input := fixtures.wiki[:1<<12] // matrix products are O(n²–n³) per symbol
	b.Run("matrix-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			semiring.MatrixFinal(d, input, d.Start())
		}
	})
	b.Run("func-composition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			semiring.FuncProduct(d, input, 4096)
		}
	})
	r, _ := core.New(d, core.WithStrategy(core.Convergence))
	b.Run("enumerative-convergence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.CompositionVector(input)
		}
	})
}
