// Command fsmstat is the static analyzer the paper's conclusion
// anticipates ("we believe that future FSM compilers will be able to
// automatically explore the various tradeoffs described in the paper to
// obtain fast implementations"): it takes a machine — a regex pattern
// or a serialized DFA — and reports the structural quantities that
// drive strategy choice (state count, per-symbol range distribution,
// worst-case convergence, k-locality), the strategy Auto would pick,
// and the gather cost per input symbol in the emulated SIMD model.
//
// Usage:
//
//	fsmstat -pattern 'UNION\s+SELECT' [-i] [-anchored]
//	fsmstat -load machine.dfa
//	fsmstat -pattern 'a+b' -save machine.dfa
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dpfsm/internal/analysis"
	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/gather"
	"dpfsm/internal/regex"
)

func main() {
	pattern := flag.String("pattern", "", "compile this PCRE-subset pattern")
	insensitive := flag.Bool("i", false, "case-insensitive")
	anchored := flag.Bool("anchored", false, "whole-input semantics")
	load := flag.String("load", "", "load a serialized machine instead of compiling")
	save := flag.String("save", "", "serialize the machine to this file")
	maxConfigs := flag.Int("maxconfigs", 1<<16, "budget for worst-case convergence exploration")
	flag.Parse()

	var d *fsm.DFA
	var err error
	switch {
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fail(ferr)
		}
		d, err = fsm.ReadDFA(f)
		f.Close()
	case *pattern != "":
		d, err = regex.Compile(*pattern, regex.Options{CaseInsensitive: *insensitive, Anchored: *anchored})
	default:
		fmt.Fprintln(os.Stderr, "fsmstat: need -pattern or -load")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			fail(ferr)
		}
		if _, err := d.WriteTo(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("saved to %s\n", *save)
	}

	fmt.Printf("machine:           %v\n", d)
	if min := d.Minimize().NumStates(); min == d.NumStates() {
		fmt.Println("minimal:           yes")
	} else {
		fmt.Printf("minimal:           no (%d states after minimization)\n", min)
	}

	// Range distribution across symbols.
	ranges := d.RangeSizes()
	sorted := append([]int(nil), ranges...)
	sort.Ints(sorted)
	maxRange := sorted[len(sorted)-1]
	fmt.Printf("range sizes:       min %d, median %d, max %d (of %d states)\n",
		sorted[0], sorted[len(sorted)/2], maxRange, d.NumStates())
	perms := 0
	for a := 0; a < d.NumSymbols(); a++ {
		if d.IsPermutation(byte(a)) {
			perms++
		}
	}
	fmt.Printf("permutation syms:  %d / %d (these block convergence)\n", perms, d.NumSymbols())

	// Table accounting (§5.3).
	fmt.Printf("flat table:        %d entries; coalesced tables: %d entries\n",
		d.EdgeCount(), d.CoalescedEntryCount())

	// Worst-case convergence (Figure 8 per-machine).
	for _, th := range []int{16, 8, 4, 1} {
		res := analysis.AdversarialConvergence(d, th, *maxConfigs)
		switch {
		case !res.Explored:
			fmt.Printf("worst-case ≤%-2d:    unknown (budget exhausted at %d configs)\n", th, res.Configs)
		case !res.Converges:
			fmt.Printf("worst-case ≤%-2d:    never (adversarial inputs exist)\n", th)
		default:
			fmt.Printf("worst-case ≤%-2d:    after %d symbols\n", th, res.Steps)
		}
	}
	if k, local, explored := analysis.KLocality(d, *maxConfigs); explored && local {
		fmt.Printf("k-locality:        %d-local (Holub et al. applies)\n", k)
	} else if explored {
		fmt.Println("k-locality:        not k-local for any k")
	} else {
		fmt.Println("k-locality:        unknown (budget)")
	}

	// Strategy recommendation and per-symbol gather costs.
	r, err := core.New(d)
	if err != nil {
		fail(err)
	}
	fmt.Printf("auto strategy:     %v\n", r.Strategy())
	fmt.Printf("shuffles/symbol:   base %d, range-coalesced %d (emulated W=%d model)\n",
		gather.Cost(d.NumStates(), d.NumStates(), 0),
		gather.Cost(maxRange, maxRange, 0),
		gather.Width)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fsmstat:", err)
	os.Exit(1)
}
