// Command htmltok tokenizes HTML with either the switch-encoded
// baseline or the data-parallel tokenizer of the §6.3 case study, and
// prints tokens or throughput. The parallel implementation is the
// span-emitting transduce path: the tokenizer compiles its Mealy
// token-class table into the plan and token offsets come straight from
// core.TransduceSpans — chunk-parallel replay, no scalar rescan.
//
// Usage:
//
//	htmltok -in page.html [-impl switch|table|parallel] [-procs N] [-print]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	impl := flag.String("impl", "parallel", "switch, table, or parallel")
	procs := flag.Int("procs", 0, "processor count for the parallel tokenizer (0 = all)")
	print := flag.Bool("print", false, "print tokens instead of a summary")
	flag.Parse()

	var data []byte
	var err error
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "htmltok:", err)
		os.Exit(1)
	}

	var toks []htmltok.Token
	start := time.Now()
	switch *impl {
	case "switch":
		toks = htmltok.TokenizeSwitch(data)
	case "table":
		tk, err := htmltok.NewTokenizer()
		if err != nil {
			fmt.Fprintln(os.Stderr, "htmltok:", err)
			os.Exit(1)
		}
		toks = tk.TokenizeTable(data)
	case "parallel":
		tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(*procs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "htmltok:", err)
			os.Exit(1)
		}
		toks = tk.Tokenize(data)
	default:
		fmt.Fprintf(os.Stderr, "htmltok: unknown impl %q\n", *impl)
		os.Exit(2)
	}
	dur := time.Since(start)

	if *print {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, t := range toks {
			fmt.Fprintf(w, "%-10s %q\n", t.Type, data[t.Start:t.End])
		}
		return
	}
	counts := map[htmltok.TokenType]int{}
	for _, t := range toks {
		counts[t.Type]++
	}
	fmt.Printf("%d bytes, %d tokens in %v (%.1f MB/s)\n",
		len(data), len(toks), dur, float64(len(data))/dur.Seconds()/1e6)
	for _, tt := range []htmltok.TokenType{
		htmltok.TokText, htmltok.TokStartTagName, htmltok.TokEndTagName,
		htmltok.TokAttrName, htmltok.TokAttrValue, htmltok.TokComment,
		htmltok.TokDoctype, htmltok.TokBogus,
	} {
		if counts[tt] > 0 {
			fmt.Printf("  %-12s %d\n", tt, counts[tt])
		}
	}
}
