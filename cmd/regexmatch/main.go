// Command regexmatch is a grep-like scanner built on the data-parallel
// FSM runner: it compiles a PCRE-subset pattern to a DFA and reports
// whether (and how fast) each input matches, using the enumerative
// strategies of internal/core.
//
// Usage:
//
//	regexmatch -pattern 'cmd\.exe' [-i] [-strategy auto|seq|base|conv|range] [-procs N] [file...]
//
// With no files, stdin is scanned. Exit status 0 if every input
// matched, 1 if any did not, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/regex"
)

func main() {
	pattern := flag.String("pattern", "", "PCRE-subset pattern (required)")
	insensitive := flag.Bool("i", false, "case-insensitive match")
	anchored := flag.Bool("anchored", false, "whole-input match instead of substring search")
	strategy := flag.String("strategy", "auto", "auto, seq, base, ilp, conv, or range")
	procs := flag.Int("procs", 1, "processor count for the parallel runner (0 = all)")
	verbose := flag.Bool("v", false, "print machine statistics and timing")
	dotOut := flag.String("dot", "", "write the compiled machine as Graphviz dot to this file and exit")
	find := flag.Bool("find", false, "report the first match span instead of a boolean (unanchored, non-nullable patterns)")
	flag.Parse()

	if *pattern == "" {
		fmt.Fprintln(os.Stderr, "regexmatch: -pattern is required")
		flag.Usage()
		os.Exit(2)
	}

	strategies := map[string]core.Strategy{
		"auto": core.Auto, "seq": core.Sequential, "base": core.Base,
		"ilp": core.BaseILP, "conv": core.Convergence, "range": core.RangeCoalesced,
	}
	strat, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "regexmatch: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	d, err := regex.Compile(*pattern, regex.Options{
		CaseInsensitive: *insensitive,
		Anchored:        *anchored,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "regexmatch:", err)
		os.Exit(2)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regexmatch:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := d.WriteDot(f, *pattern); err != nil {
			fmt.Fprintln(os.Stderr, "regexmatch:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %d-state machine to %s\n", d.NumStates(), *dotOut)
		return
	}
	r, err := core.New(d, core.WithStrategy(strat), core.WithProcs(*procs))
	if err != nil {
		fmt.Fprintln(os.Stderr, "regexmatch:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "machine: %v, max range %d, strategy %v, procs %d\n",
			d, d.MaxRangeSize(), r.Strategy(), r.Procs())
	}

	var finder *regex.Finder
	if *find {
		finder, err = regex.NewFinder(*pattern, regex.Options{CaseInsensitive: *insensitive},
			core.WithStrategy(strat), core.WithProcs(*procs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "regexmatch:", err)
			os.Exit(2)
		}
	}

	inputs := flag.Args()
	allMatched := true
	scan := func(name string, data []byte) {
		if finder != nil {
			start := time.Now()
			s, e, ok := finder.Find(data)
			dur := time.Since(start)
			if !ok {
				allMatched = false
				fmt.Printf("%s: no match (%v)\n", name, dur)
				return
			}
			span := data[s:e]
			if len(span) > 60 {
				span = span[:60]
			}
			fmt.Printf("%s: match at [%d:%d) %q (%v)\n", name, s, e, span, dur)
			return
		}
		start := time.Now()
		matched := r.Accepts(data)
		dur := time.Since(start)
		if !matched {
			allMatched = false
		}
		if *verbose {
			fmt.Printf("%s: match=%v (%d bytes in %v, %.1f MB/s)\n",
				name, matched, len(data), dur, float64(len(data))/dur.Seconds()/1e6)
		} else {
			fmt.Printf("%s: %v\n", name, matched)
		}
	}

	if len(inputs) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regexmatch:", err)
			os.Exit(2)
		}
		scan("stdin", data)
	}
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "regexmatch:", err)
			os.Exit(2)
		}
		scan(path, data)
	}
	if !allMatched {
		os.Exit(1)
	}
}
