package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-n", "6", "-seed", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep timedReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if !rep.OK || rep.MachinesRun != 6 || rep.Seed != 1 {
		t.Fatalf("report: %+v", rep.Report)
	}
	if !strings.Contains(errb.String(), "all paths agree") {
		t.Errorf("stderr summary missing: %s", errb.String())
	}
	// The per-check timing breakdown rides along: every machine was
	// compiled and every input went through the oracle sweep.
	if rep.CheckTimings.Compile.Calls != rep.MachinesRun {
		t.Errorf("compile timings: %d calls, %d machines", rep.CheckTimings.Compile.Calls, rep.MachinesRun)
	}
	if rep.CheckTimings.Oracle.Calls != rep.Inputs || rep.CheckTimings.Oracle.TotalNs <= 0 {
		t.Errorf("oracle timings: %+v, inputs=%d", rep.CheckTimings.Oracle, rep.Inputs)
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	var a, b bytes.Buffer
	if code := run([]string{"-n", "4", "-seed", "7", "-quick"}, &a, &bytes.Buffer{}); code != 0 {
		t.Fatalf("first run exit %d", code)
	}
	if code := run([]string{"-n", "4", "-seed", "7", "-quick"}, &b, &bytes.Buffer{}); code != 0 {
		t.Fatalf("second run exit %d", code)
	}
	// Strip the wall-clock fields before comparing.
	norm := func(raw []byte) string {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "elapsed_ms")
		delete(m, "check_timings")
		out, _ := json.Marshal(m)
		return string(out)
	}
	if norm(a.Bytes()) != norm(b.Bytes()) {
		t.Fatalf("same seed, different reports:\n%s\n%s", a.String(), b.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{"-n", "2", "-seed", "3", "-quick", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty with -o, got %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep timedReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("file not JSON: %v", err)
	}
	if !rep.OK {
		t.Fatalf("report: %+v", rep.Report)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "0"}, &out, &errb); code != 2 {
		t.Errorf("-n 0: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

func TestRunVerbose(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "1", "-seed", "1", "-quick", "-v"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb.String(), "machine 1/1") {
		t.Errorf("verbose progress missing: %s", errb.String())
	}
}
