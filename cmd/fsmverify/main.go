// Command fsmverify soak-tests the FSM runtime: it generates N random
// machines biased toward the paper's hard regimes, runs each through
// every execution strategy, the engine dispatch lanes (single-core,
// multicore, and the speculative lane — the latter both with its
// default guess and with a poisoned guess that forces mispredict
// re-runs), plan serialization round trips, and chunked-vs-whole
// execution, compares everything against a scalar oracle, and emits a
// JSON report. The
// exit status is 0 only when no divergence was found, so CI can run it
// as a deterministic smoke (fsmverify -n 200 -seed 1) and archive the
// report artifact.
//
// Usage:
//
//	fsmverify [-n machines] [-seed s] [-procs p] [-min-chunk b]
//	          [-large-input b] [-quick] [-o report.json] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpfsm/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// timedReport wraps the conformance report with wall-clock accounting:
// the total elapsed time plus the per-check phase breakdown, so CI
// artifacts show where soak time goes as the runtime evolves. The
// timing fields live here, not in conformance.Report, which must stay
// byte-identical across same-seed runs.
type timedReport struct {
	conformance.Report
	ElapsedMS    int64               `json:"elapsed_ms"`
	CheckTimings conformance.Timings `json:"check_timings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsmverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n          = fs.Int("n", 200, "number of random machines to soak-test")
		seed       = fs.Int64("seed", 1, "generator seed (same seed+n ⇒ same machines)")
		procs      = fs.Int("procs", 0, "multicore width (0 = harness default)")
		minChunk   = fs.Int("min-chunk", 0, "per-goroutine minimum chunk bytes (0 = harness default)")
		largeInput = fs.Int("large-input", 0, "engine multicore-lane threshold bytes (0 = harness default)")
		quick      = fs.Bool("quick", false, "oracle and metamorphic checks only (skip engine, round trips, trace, fold probes)")
		out        = fs.String("o", "", "write the JSON report to this file instead of stdout")
		verbose    = fs.Bool("v", false, "log each machine to stderr as it is checked")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "fsmverify: -n must be positive")
		return 2
	}

	cfg := conformance.DefaultConfig()
	if *quick {
		cfg = conformance.QuickConfig()
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}
	if *minChunk > 0 {
		cfg.MinChunk = *minChunk
	}
	if *largeInput > 0 {
		cfg.LargeInput = *largeInput
	}

	var progress func(i int, gm conformance.GeneratedMachine)
	if *verbose {
		progress = func(i int, gm conformance.GeneratedMachine) {
			fmt.Fprintf(stderr, "fsmverify: machine %d/%d regime=%s states=%d symbols=%d\n",
				i+1, *n, gm.Label, gm.D.NumStates(), gm.D.NumSymbols())
		}
	}

	t0 := time.Now()
	soakRep, tm := conformance.SoakTimed(*n, *seed, cfg, progress)
	rep := timedReport{Report: soakRep, CheckTimings: tm}
	rep.ElapsedMS = time.Since(t0).Milliseconds()

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "fsmverify: encoding report: %v\n", err)
		return 2
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(stderr, "fsmverify: %v\n", err)
			return 2
		}
	} else {
		stdout.Write(enc)
	}

	if !rep.OK {
		fmt.Fprintf(stderr, "fsmverify: DIVERGENCE at machine %d: %s\n",
			rep.FailedIndex, rep.Divergence.Summary)
		return 1
	}
	fmt.Fprintf(stderr, "fsmverify: %d machines, %d inputs, %d strategies: all paths agree (%.1fs)\n",
		rep.MachinesRun, rep.Inputs, len(rep.Strategies), float64(rep.ElapsedMS)/1000)
	return 0
}
