package main

import (
	"encoding/json"
	"net/http"

	"dpfsm/internal/serverapi"
)

// The export-and-health half of the observability surface. /healthz
// stays a bare liveness probe — "the process responds" — while
// /readyz answers the load balancer's actual question: "should this
// instance receive traffic right now". The two diverge in exactly
// three situations, each with a machine-readable reason:
//
//	starting       the registry has not finished loading
//	draining       graceful shutdown began; in-flights are finishing
//	slo_fast_burn  the availability SLO is burning its error budget
//	               past the fast-burn threshold in both windows
//
// /v1/slo exposes the full multi-window burn-rate report behind that
// last reason, so an operator paged by an unready probe can see which
// window tripped and how bad the burn is.

// markReady flips the server into the traffic-accepting state; main
// calls it once the registry is loaded and the listener is up.
func (s *server) markReady() { s.ready.Store(true) }

// beginDrain marks the start of graceful shutdown, so /readyz turns
// the load balancer away while in-flight requests finish.
func (s *server) beginDrain() { s.draining.Store(true) }

// handleReady is GET /readyz: 200 when the instance should receive
// traffic, 503 with the reasons when not. It bypasses writeError —
// readiness is a probe contract, not an API error.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if !s.ready.Load() {
		reasons = append(reasons, "starting")
	}
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.slo.BurnExceeded() {
		reasons = append(reasons, "slo_fast_burn")
	}
	rd := serverapi.Readiness{Ready: len(reasons) == 0, Reasons: reasons}
	w.Header().Set("Content-Type", "application/json")
	if !rd.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(rd)
}

// handleSLO is GET /v1/slo: the configured objectives, both burn
// windows, and the current verdict.
func (s *server) handleSLO(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/slo")
		return
	}
	writeJSON(w, s.slo.Report())
}
