// Command fsmserve runs compiled FSMs as an HTTP service with live
// telemetry — the serving half of the ROADMAP's production
// north-star. Requests execute on the batch engine (internal/engine):
// a bounded worker pool that runs small inputs single-core (batch-
// level parallelism) and large inputs through the paper's Figure 5
// multicore split (input-level parallelism), with per-request
// cancellation threaded down to the chunk loops — a disconnected
// client stops its own work.
//
// The API is versioned under /v1/; request/response shapes live in
// internal/serverapi. Unversioned aliases of the original routes are
// kept for one deprecation cycle and mark themselves with a
// `Deprecation: true` header.
//
// Endpoints:
//
//	POST /v1/run?machine=NAME[&start=Q][&first=1][&trace=1]  run one input, JSON result
//	POST /v1/batch[?trace=1]                       NDJSON jobs in, streamed NDJSON results + summary out
//	GET  /v1/machines                              list machines + static stats
//	GET  /v1/snapshot                              telemetry snapshot (JSON)
//	GET  /v1/metrics                               Prometheus text format
//	GET  /v1/traces[?machine=NAME&min_ms=N]        flight recorder: recent request traces
//	GET  /v1/traces/{id}                           one retained trace's full span tree
//	POST /run, GET /machines /snapshot /metrics    deprecated aliases of the above
//	GET  /debug/vars                               expvar (includes "dpfsm")
//	GET  /debug/pprof/*                            net/http/pprof
//	GET  /healthz                                  liveness probe
//
// Tracing: a request is traced when it asks (?trace=1) or carries a
// W3C traceparent header (honored, so fsmserve joins the caller's
// distributed trace). Traced responses carry an X-Trace-Id header;
// traced runs add an inline `explain` block, and completed traces are
// retained by an in-memory flight recorder (-trace-buf capacity).
//
// Usage:
//
//	fsmserve -addr :8377 -patterns-file rules.txt -procs 0 -strategy auto
//
// The patterns file holds one NAME=REGEX per line (Snort-style
// "contains" semantics; blank lines and #-comments ignored); without
// -patterns-file a small default intrusion-detection set is served.
// SIGINT/SIGTERM shut the server down gracefully: the listener stops,
// in-flight requests finish (bounded by -shutdown-timeout), and the
// engine drains its queue.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/fsm"
	"dpfsm/internal/regex"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// server wires the engine, the machine metadata, and the shared
// telemetry sink behind the HTTP surface.
type server struct {
	engine   *engine.Engine
	patterns map[string]string // name -> source regex
	order    []string          // first pattern is the default machine
	metrics  *telemetry.Metrics
	maxBody  int64
	log      *slog.Logger
	recorder *trace.Recorder
}

// defaultPatterns serve the zero-config case: a recognizable slice of
// the Snort-shaped workload the benchmarks use.
var defaultPatterns = []string{
	`sqli=UNION\s+SELECT`,
	`traversal=\.\./\.\./`,
	`cgi=/cgi-bin/.*\.(pl|sh)`,
	`nopsled=\x90\x90\x90\x90`,
}

func newServer(patterns []string, strategy core.Strategy, procs int, maxBody int64) (*server, error) {
	if len(patterns) == 0 {
		patterns = defaultPatterns
	}
	s := &server{
		patterns: make(map[string]string),
		metrics:  new(telemetry.Metrics),
		maxBody:  maxBody,
		// main swaps in the configured logger and recorder; the
		// defaults keep tests and embedders quiet but functional.
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		recorder: trace.NewRecorder(0),
	}
	s.engine = engine.New(
		engine.WithProcs(procs),
		engine.WithTelemetry(s.metrics),
	)
	for _, spec := range patterns {
		name, pat, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			s.Close()
			return nil, fmt.Errorf("pattern %q: want NAME=REGEX", spec)
		}
		d, err := regex.Compile(pat, regex.Options{})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pattern %q: %v", name, err)
		}
		if _, err := s.engine.Register(name, d, core.WithStrategy(strategy)); err != nil {
			s.Close()
			return nil, fmt.Errorf("pattern %q: %v", name, err)
		}
		s.patterns[name] = pat
		s.order = append(s.order, name)
	}
	return s, nil
}

// Close releases the engine's workers.
func (s *server) Close() { s.engine.Close() }

// resolveMachine maps the ?machine= query (empty = default) to a
// registered machine, or writes a 404.
func (s *server) resolveMachine(w http.ResponseWriter, req *http.Request) (string, *engine.Machine, bool) {
	name := req.URL.Query().Get("machine")
	if name == "" {
		name = s.order[0]
	}
	m := s.engine.Machine(name)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q (see %s/machines)", name, serverapi.Version))
		return "", nil, false
	}
	return name, m, true
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST an input body to /v1/run")
		return
	}
	name, m, ok := s.resolveMachine(w, req)
	if !ok {
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	job := engine.Job{Machine: name, Input: input}
	if qs := req.URL.Query().Get("start"); qs != "" {
		var q int
		if _, err := fmt.Sscanf(qs, "%d", &q); err != nil || q < 0 || !m.DFA().ValidState(fsm.State(q)) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad start state %q", qs))
			return
		}
		job.Start, job.HasStart = fsm.State(q), true
	}

	// The request context rides down to the core chunk loops, so a
	// disconnected or timed-out client cancels its own run.
	r := s.engine.Run(req.Context(), job)
	if r.Err != nil {
		writeEngineError(w, r.Err)
		return
	}
	res := serverapi.RunResult{
		Machine:    name,
		Bytes:      r.Bytes,
		Final:      r.Final,
		Accepts:    r.Accepts,
		Multicore:  r.Multicore,
		DurationNs: int64(r.Duration),
	}
	if r.Duration > 0 {
		res.MBPerS = float64(r.Bytes) / r.Duration.Seconds() / 1e6
	}
	if tr := trace.FromContext(req.Context()); tr != nil {
		res.TraceID = tr.ID()
		// The inline explain block is opt-in (?trace=1); a request that
		// was traced only because it carried a traceparent header gets
		// the ID but keeps the wire result lean.
		if req.URL.Query().Get("trace") != "" {
			res.Explain = buildExplain(tr)
		}
	}
	if req.URL.Query().Get("first") != "" {
		start := m.DFA().Start()
		if job.HasStart {
			start = job.Start
		}
		hit := m.Runner().FirstAccepting(input, start)
		res.FirstMatch = &hit
	}
	writeJSON(w, res)
}

// handleBatch is POST /v1/batch: NDJSON jobs in (one serverapi.BatchJob
// per line), NDJSON results out — streamed in completion order as the
// engine finishes them, with a BatchTrailer summary as the final line.
// The request context cancels the whole batch, so a disconnecting
// client releases the pool mid-batch.
func (s *server) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST NDJSON jobs to /v1/batch")
		return
	}
	ctx := req.Context()
	s.metrics.EngineBatches.Inc()

	// Parse every request line up front; the body is bounded by
	// maxBody, so the job list is too.
	sc := bufio.NewScanner(http.MaxBytesReader(w, req.Body, s.maxBody))
	sc.Buffer(make([]byte, 64<<10), bufLimit(s.maxBody))
	type lineJob struct {
		idx int
		job engine.Job
	}
	var jobs []lineJob
	var preFailed []serverapi.BatchResult
	idx := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		job, err := parseBatchLine(line)
		if err != nil {
			preFailed = append(preFailed, serverapi.BatchResult{Index: idx, Error: err.Error()})
		} else {
			jobs = append(jobs, lineJob{idx: idx, job: job})
		}
		idx++
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading batch body: %v", err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	t0 := time.Now()
	summary := serverapi.BatchSummary{Jobs: idx}
	for _, r := range preFailed {
		summary.Errors++
		_ = enc.Encode(r)
	}

	out := make(chan engine.Result, len(jobs))
	go func() {
		for _, lj := range jobs {
			if err := s.engine.Submit(ctx, lj.job, lj.idx, out); err != nil {
				out <- engine.Result{Index: lj.idx, Machine: lj.job.Machine, Bytes: len(lj.job.Input), Err: err}
			}
		}
	}()
	for range jobs {
		r := <-out
		br := serverapi.BatchResult{
			Index:      r.Index,
			Machine:    r.Machine,
			Final:      r.Final,
			Accepts:    r.Accepts,
			Bytes:      r.Bytes,
			Multicore:  r.Multicore,
			DurationNs: int64(r.Duration),
		}
		summary.Bytes += int64(r.Bytes)
		switch {
		case r.Err == nil:
			summary.OK++
			if r.Multicore {
				summary.Multicore++
			} else {
				summary.SingleCore++
			}
		default:
			br.Error = r.Err.Error()
			summary.Errors++
			if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
				summary.Canceled++
			}
		}
		_ = enc.Encode(br)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.DurationNs = int64(time.Since(t0))
	_ = enc.Encode(serverapi.BatchTrailer{Summary: summary})
}

// parseBatchLine decodes one NDJSON request line into an engine job.
func parseBatchLine(line []byte) (engine.Job, error) {
	var bj serverapi.BatchJob
	if err := json.Unmarshal(line, &bj); err != nil {
		return engine.Job{}, fmt.Errorf("bad job line: %v", err)
	}
	job := engine.Job{Machine: bj.Machine, Timeout: time.Duration(bj.TimeoutMs) * time.Millisecond}
	switch {
	case bj.InputB64 != "" && bj.Input != "":
		return engine.Job{}, errors.New("bad job line: both input and input_b64 set")
	case bj.InputB64 != "":
		raw, err := base64.StdEncoding.DecodeString(bj.InputB64)
		if err != nil {
			return engine.Job{}, fmt.Errorf("bad input_b64: %v", err)
		}
		job.Input = raw
	default:
		job.Input = []byte(bj.Input)
	}
	if bj.Start != nil {
		if *bj.Start < 0 || *bj.Start > int(^fsm.State(0)) {
			return engine.Job{}, fmt.Errorf("bad start state %d", *bj.Start)
		}
		job.Start, job.HasStart = fsm.State(*bj.Start), true
	}
	return job, nil
}

// bufLimit clamps maxBody to a scanner line limit.
func bufLimit(maxBody int64) int {
	const cap = 1 << 30
	if maxBody > cap {
		return cap
	}
	return int(maxBody) + 1
}

func (s *server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	out := make([]serverapi.MachineInfo, 0, len(s.order))
	for _, name := range s.order {
		m := s.engine.Machine(name)
		out = append(out, serverapi.MachineInfo{
			Name:     name,
			Pattern:  s.patterns[name],
			Strategy: m.Runner().Strategy().String(),
			Procs:    s.engine.Procs(),
			Stats:    m.DFA().Stats(),
		})
	}
	writeJSON(w, out)
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError emits the shared JSON error shape.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serverapi.Error{Error: msg})
}

// writeEngineError maps engine failure modes to HTTP statuses.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrUnknownMachine):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, engine.ErrBadStart):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// deprecated wraps an alias route with the deprecation headers
// pointing at its v1 successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(serverapi.DeprecationHeader, "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		h(w, req)
	}
}

// mux assembles the full route table, including the expvar and pprof
// debug surfaces that normally ride on http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	// Publishing makes the shared sink visible at /debug/vars next to
	// the runtime's memstats; an "already taken" error just means an
	// earlier server in this process claimed the name (tests).
	_ = s.metrics.Publish("dpfsm")
	mux := http.NewServeMux()
	metricsHandler := s.metrics.Handler()

	// Versioned surface. Every route goes through instrument (access
	// log); run and batch additionally accept tracing.
	mux.HandleFunc(serverapi.Version+"/run", s.instrument(serverapi.Version+"/run", true, s.handleRun))
	mux.HandleFunc(serverapi.Version+"/batch", s.instrument(serverapi.Version+"/batch", true, s.handleBatch))
	mux.HandleFunc(serverapi.Version+"/machines", s.instrument(serverapi.Version+"/machines", false, s.handleMachines))
	mux.HandleFunc(serverapi.Version+"/snapshot", s.instrument(serverapi.Version+"/snapshot", false, s.handleSnapshot))
	mux.Handle(serverapi.Version+"/metrics", s.instrument(serverapi.Version+"/metrics", false, metricsHandler.ServeHTTP))
	mux.HandleFunc(serverapi.Version+"/traces", s.instrument(serverapi.Version+"/traces", false, s.handleTraces))
	mux.HandleFunc(serverapi.Version+"/traces/", s.instrument(serverapi.Version+"/traces/{id}", false, s.handleTraceByID))

	// Deprecated unversioned aliases.
	mux.HandleFunc("/run", s.instrument("/run", true, deprecated(serverapi.Version+"/run", s.handleRun)))
	mux.HandleFunc("/machines", s.instrument("/machines", false, deprecated(serverapi.Version+"/machines", s.handleMachines)))
	mux.HandleFunc("/snapshot", s.instrument("/snapshot", false, deprecated(serverapi.Version+"/snapshot", s.handleSnapshot)))
	mux.HandleFunc("/metrics", s.instrument("/metrics", false, deprecated(serverapi.Version+"/metrics", metricsHandler.ServeHTTP)))

	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// loadPatternsFile reads NAME=REGEX lines; blank lines and #-comments
// are skipped.
func loadPatternsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

func main() {
	var (
		addr            = flag.String("addr", ":8377", "listen address")
		strat           = flag.String("strategy", "auto", "execution strategy, one of: "+strings.Join(core.Strategies(), " "))
		procs           = flag.Int("procs", 0, "multicore width for large inputs (0 = NumCPU, 1 = single-core only)")
		maxBody         = flag.Int64("maxbody", 64<<20, "maximum POSTed body size in bytes")
		patternsFile    = flag.String("patterns-file", "", "file of NAME=REGEX machines, one per line (default: a small IDS rule set)")
		logFormat       = flag.String("log-format", "text", `log output format: "text" or "json"`)
		traceBuf        = flag.Int("trace-buf", trace.DefaultRecorderCapacity, "flight-recorder capacity: completed request traces retained for /v1/traces")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "fsmserve: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	strategy, err := core.ParseStrategy(*strat)
	if err != nil {
		fatal("bad -strategy", err)
	}
	var patterns []string
	if *patternsFile != "" {
		patterns, err = loadPatternsFile(*patternsFile)
		if err != nil {
			fatal("loading -patterns-file", err)
		}
	}
	srv, err := newServer(patterns, strategy, *procs, *maxBody)
	if err != nil {
		fatal("building server", err)
	}
	srv.log = logger
	srv.recorder = trace.NewRecorder(*traceBuf)
	for _, name := range srv.order {
		m := srv.engine.Machine(name)
		stats := m.DFA().Stats()
		logger.Info("machine registered",
			"machine", name,
			"states", stats.States,
			"max_range", stats.MaxRange,
			"strategy", m.Runner().Strategy().String(),
			"procs", srv.engine.Procs(),
		)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	listenErr := make(chan error, 1)
	go func() { listenErr <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		"addr", *addr,
		"routes", serverapi.Version+"/{run,batch,machines,snapshot,metrics,traces}",
		"trace_buf", srv.recorder.Cap(),
	)

	select {
	case err := <-listenErr:
		fatal("listen", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish,
	// then drain the engine's queued jobs — all under one deadline. A
	// second signal kills the process the usual way (stop() above
	// restored the default handler).
	stop()
	logger.Info("shutting down", "deadline", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.engine.Shutdown(sctx); err != nil {
		logger.Error("engine shutdown", "err", err)
	}
	logger.Info("stopped")
}
