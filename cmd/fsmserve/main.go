// Command fsmserve runs compiled FSMs as an HTTP service with live
// telemetry — the serving half of the ROADMAP's production
// north-star. Requests execute on the batch engine (internal/engine):
// a bounded worker pool that runs small inputs single-core (batch-
// level parallelism) and large inputs through the paper's Figure 5
// multicore split (input-level parallelism), with per-request
// cancellation threaded down to the chunk loops — a disconnected
// client stops its own work.
//
// Large inputs on machines with observed history are dispatched by
// the adaptive selector (internal/adaptive): per-machine profiles
// pick between the multicore and speculative lanes, and responses
// carry the lane, resolved strategy, and selection reason.
//
// The API is versioned under /v1/; request/response shapes live in
// internal/serverapi. The unversioned aliases of the original routes
// (POST /run, GET /machines /snapshot /metrics) completed their
// deprecation cycle and are gone. Every non-2xx response carries the
// serverapi.Error envelope: a message plus a stable machine-readable
// code.
//
// Endpoints:
//
//	POST /v1/run?machine=NAME[&start=Q][&strategy=S][&first=1][&trace=1]  run one input, JSON result
//	POST /v1/transduce?machine=NAME[&start=Q][&strategy=S][&trace=1]      run a transducer machine, streamed NDJSON header + token spans + summary
//	POST /v1/batch[?trace=1]                       NDJSON jobs in, streamed NDJSON results + summary out
//	GET  /v1/machines                              list machines + static stats
//	GET  /v1/machines/{name}                       one machine's registry entry
//	GET  /v1/machines/{name}/profile               observed perf profile + current adaptive selection
//	GET  /v1/snapshot                              telemetry snapshot (JSON)
//	GET  /v1/status                                live status: queue depth, shed rate, plan-cache hit ratio, per-machine perf profiles + adaptive selections, uptime, build info
//	GET  /v1/metrics                               Prometheus text format (FSM + runtime/metrics series)
//	GET  /v1/traces[?machine=NAME&min_ms=N]        flight recorder: recent request traces
//	GET  /v1/traces/{id}                           one retained trace's full span tree
//	GET  /v1/slo                                   SLO report: objectives, multi-window burn rates, verdict
//	GET  /debug/vars                               expvar (includes "dpfsm")
//	GET  /debug/pprof/*                            net/http/pprof
//	GET  /healthz                                  liveness probe
//	GET  /readyz                                   readiness probe: 503 while starting, draining, or SLO-burning
//
// Tracing: a request is traced when it asks (?trace=1) or carries a
// W3C traceparent header (honored, so fsmserve joins the caller's
// distributed trace). Traced responses carry an X-Trace-Id header;
// traced runs add an inline `explain` block, and completed traces are
// retained by an in-memory flight recorder (-trace-buf capacity).
// With -trace-sample N, every run/batch request is traced and a
// sampler decides retention: N head samples per second plus every
// slow, erroring, shed, or mispredicted trace. Retained traces also
// ship to the -otlp-endpoint collector when one is configured.
//
// Usage:
//
//	fsmserve -addr :8377 -patterns-file rules.txt -procs 0 -strategy auto
//
// The patterns file holds one NAME=REGEX per line (Snort-style
// "contains" semantics; blank lines and #-comments ignored); without
// -patterns-file a small default intrusion-detection set is served.
// SIGINT/SIGTERM shut the server down gracefully: the listener stops,
// in-flight requests finish (bounded by -shutdown-timeout), and the
// engine drains its queue.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dpfsm/internal/cluster"
	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/fsm"
	"dpfsm/internal/otlp"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/regex"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/slo"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
)

// server wires the engine, the machine registry, and the shared
// telemetry sink behind the HTTP surface.
type server struct {
	engine *engine.Engine
	// mu guards the registry views (meta, order). The engine has its
	// own lock; this one keeps the name list and per-machine metadata
	// consistent with it across dynamic register/unregister/reload.
	mu    sync.RWMutex
	meta  map[string]machineMeta
	order []string // registration order; first machine is the default
	// strategy is the server-wide default for machines that do not
	// name one; planDir, when set, round-trips serialized plans.
	strategy core.Strategy
	planDir  string
	metrics  *telemetry.Metrics
	// profiles aggregates per-machine observed performance; it persists
	// into planDir next to the serialized plans and feeds /v1/status.
	profiles *perfprofile.Store
	started  time.Time
	maxBody  int64
	log      *slog.Logger
	recorder *trace.Recorder
	// sampler, when set, turns on always-on tracing with sampled
	// retention: every traceable request is traced, and the sampler
	// decides at completion which traces survive to the recorder and
	// the exporter. Nil preserves opt-in-only tracing.
	sampler *trace.Sampler
	// exporter, when set, ships retained traces and periodic telemetry
	// snapshots to an OTLP collector. Nil disables export.
	exporter *otlp.Exporter
	// slo tracks request outcomes at the HTTP boundary for /v1/slo and
	// the /readyz burn-rate gate.
	slo *slo.Tracker
	// ready and draining drive /readyz: unready until main finishes
	// startup, unready again once graceful shutdown begins.
	ready    atomic.Bool
	draining atomic.Bool
	// peer is this node's serving side of the cluster protocol, always
	// mounted (a node with no -peers can still serve chunks for other
	// coordinators). Its resolver consults the local registry, so plans
	// both nodes already compiled are never shipped over the wire.
	peer *cluster.Peer
}

// machineMeta is the registry's per-machine bookkeeping.
type machineMeta struct {
	pattern string
	// source is "default", "file" (-patterns-file / SIGHUP reload), or
	// "api" (POST /v1/machines). SIGHUP reconciliation only touches
	// file-sourced machines.
	source string
}

// defaultPatterns serve the zero-config case: a recognizable slice of
// the Snort-shaped workload the benchmarks use.
var defaultPatterns = []string{
	`sqli=UNION\s+SELECT`,
	`traversal=\.\./\.\./`,
	`cgi=/cgi-bin/.*\.(pl|sh)`,
	`nopsled=\x90\x90\x90\x90`,
}

func newServer(patterns []string, strategy core.Strategy, procs int, maxBody int64, planDir string) (*server, error) {
	source := "file"
	if len(patterns) == 0 {
		patterns = defaultPatterns
		source = "default"
	}
	s := &server{
		meta:     make(map[string]machineMeta),
		strategy: strategy,
		planDir:  planDir,
		metrics:  new(telemetry.Metrics),
		profiles: perfprofile.NewStore(planDir),
		started:  time.Now(),
		maxBody:  maxBody,
		// main swaps in the configured logger, recorder, and SLO
		// tracker; the defaults keep tests and embedders quiet but
		// functional.
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		recorder: trace.NewRecorder(0),
		slo:      slo.New(slo.Config{}),
	}
	s.engine = engine.New(
		engine.WithProcs(procs),
		engine.WithTelemetry(s.metrics),
		engine.WithPerfProfiles(s.profiles),
	)
	s.peer = cluster.NewPeer(s.resolvePlan)
	for _, spec := range patterns {
		name, pat, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			s.Close()
			return nil, fmt.Errorf("pattern %q: want NAME=REGEX", spec)
		}
		if _, _, err := s.registerMachine(name, pat, strategy, source); err != nil {
			s.Close()
			return nil, fmt.Errorf("pattern %q: %v", name, err)
		}
	}
	return s, nil
}

// resolvePlan finds a locally registered machine's compiled plan by
// fingerprint — the cluster peer's local path: chunk tasks for
// machines this node already compiled skip the plan-shipping round
// trip entirely.
func (s *server) resolvePlan(fingerprint string) *core.Plan {
	s.mu.RLock()
	names := append([]string(nil), s.order...)
	s.mu.RUnlock()
	for _, name := range names {
		if m := s.engine.Machine(name); m != nil && m.Fingerprint() == fingerprint {
			return m.Plan()
		}
	}
	return nil
}

// enableCluster builds the coordinator over the static peer set and
// attaches it to the engine, turning on the cluster dispatch lane.
func (s *server) enableCluster(peers []string, chunkBytes, minBytes int) error {
	co, err := cluster.NewCoordinator(cluster.Config{
		Peers:      peers,
		ChunkBytes: chunkBytes,
		Telemetry:  s.metrics,
	})
	if err != nil {
		return err
	}
	s.engine.SetClusterMinBytes(minBytes)
	s.engine.SetCluster(co)
	return nil
}

// registerMachine compiles pattern and registers it under name,
// consulting the plan-cache directory first (a machine whose plan was
// persisted by an earlier process skips table construction) and
// persisting freshly compiled plans back. Returns the machine and
// whether its plan was reused rather than built.
func (s *server) registerMachine(name, pattern string, strategy core.Strategy, source string) (*engine.Machine, bool, error) {
	d, err := regex.Compile(pattern, regex.Options{})
	if err != nil {
		return nil, false, err
	}
	opts := []core.Option{core.WithStrategy(strategy)}

	var m *engine.Machine
	cached := false
	if p := s.loadPlan(d, opts); p != nil {
		m, err = s.engine.RegisterPlan(name, p, opts...)
		cached = true
	} else {
		m, err = s.engine.Register(name, d, opts...)
	}
	if err != nil {
		return nil, false, err
	}
	if !cached && m.PlanCached() {
		cached = true
	}
	if s.planDir != "" && !cached {
		s.savePlan(m.Plan())
	}
	s.mu.Lock()
	s.meta[name] = machineMeta{pattern: pattern, source: source}
	s.order = append(s.order, name)
	s.mu.Unlock()
	return m, cached, nil
}

// unregisterMachine removes name from the engine and the registry
// views, reporting whether it existed.
func (s *server) unregisterMachine(name string) bool {
	if !s.engine.Unregister(name) {
		return false
	}
	s.mu.Lock()
	delete(s.meta, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	return true
}

// planPath names a serialized plan inside the plan-cache directory.
func (s *server) planPath(fingerprint string) string {
	return filepath.Join(s.planDir, fingerprint+".plan")
}

// loadPlan returns the persisted plan for (d, opts) when the plan
// directory holds a valid one, nil otherwise. Corrupt or mismatched
// files are logged and ignored — the machine just compiles.
func (s *server) loadPlan(d *fsm.DFA, opts []core.Option) *core.Plan {
	if s.planDir == "" {
		return nil
	}
	key, err := core.PlanKey(d, opts...)
	if err != nil {
		return nil
	}
	data, err := os.ReadFile(s.planPath(key))
	if err != nil {
		return nil
	}
	p, err := core.UnmarshalPlan(data)
	if err != nil {
		s.log.Warn("ignoring bad plan file", "path", s.planPath(key), "err", err)
		return nil
	}
	if p.Fingerprint() != key {
		s.log.Warn("ignoring mismatched plan file", "path", s.planPath(key), "fingerprint", p.Fingerprint())
		return nil
	}
	return p
}

// savePlan persists a freshly compiled plan with a tmp+rename write,
// so a crashed process never leaves a torn file where loadPlan looks.
// Failures are logged, not fatal: the directory is a cache.
func (s *server) savePlan(p *core.Plan) {
	data, err := p.MarshalBinary()
	if err != nil {
		s.log.Warn("serializing plan", "fingerprint", p.Fingerprint(), "err", err)
		return
	}
	if err := os.MkdirAll(s.planDir, 0o755); err != nil {
		s.log.Warn("creating plan dir", "dir", s.planDir, "err", err)
		return
	}
	dst := s.planPath(p.Fingerprint())
	tmp, err := os.CreateTemp(s.planDir, ".plan-*")
	if err != nil {
		s.log.Warn("writing plan", "path", dst, "err", err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.log.Warn("writing plan", "path", dst, "err", errors.Join(werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		s.log.Warn("writing plan", "path", dst, "err", err)
		return
	}
	s.log.Info("plan persisted", "path", dst, "bytes", len(data))
}

// Close releases the engine's workers and flushes the perf profiles
// to the plan-cache directory (best effort) so observations survive
// into the next process.
func (s *server) Close() {
	s.engine.Close()
	if err := s.profiles.SaveAll(); err != nil {
		s.log.Warn("persisting perf profiles", "err", err)
	}
}

// resolveMachine maps the ?machine= query (empty = default) to a
// registered machine, or writes a 404.
func (s *server) resolveMachine(w http.ResponseWriter, req *http.Request) (string, *engine.Machine, bool) {
	name := req.URL.Query().Get("machine")
	if name == "" {
		s.mu.RLock()
		if len(s.order) > 0 {
			name = s.order[0]
		}
		s.mu.RUnlock()
		if name == "" {
			writeError(w, http.StatusNotFound, "no machines registered")
			return "", nil, false
		}
	}
	m := s.engine.Machine(name)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q (see %s/machines)", name, serverapi.Version))
		return "", nil, false
	}
	return name, m, true
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST an input body to /v1/run")
		return
	}
	name, m, ok := s.resolveMachine(w, req)
	if !ok {
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	job := engine.Job{Machine: name, Input: input}
	if qs := req.URL.Query().Get("start"); qs != "" {
		var q int
		if _, err := fmt.Sscanf(qs, "%d", &q); err != nil || q < 0 || !m.DFA().ValidState(fsm.State(q)) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad start state %q", qs))
			return
		}
		job.Start, job.HasStart = fsm.State(q), true
	}
	// ?strategy= pins this run to an explicit strategy; "auto" (or
	// absence) keeps the machine's own adaptive dispatch.
	if qs := req.URL.Query().Get("strategy"); qs != "" {
		st, err := core.ParseStrategy(qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad strategy %q: %v", qs, err))
			return
		}
		job.Strategy = st
	}

	// The request context rides down to the core chunk loops, so a
	// disconnected or timed-out client cancels its own run.
	r := s.engine.Run(req.Context(), job)
	if r.Err != nil {
		writeEngineError(w, r.Err)
		return
	}
	res := serverapi.RunResult{
		Machine:         name,
		Bytes:           r.Bytes,
		Final:           r.Final,
		Accepts:         r.Accepts,
		Lane:            r.Lane,
		Multicore:       r.Multicore,
		Degraded:        r.Degraded,
		Strategy:        r.Strategy,
		SelectionReason: r.Reason,
		DurationNs:      int64(r.Duration),
	}
	if r.Duration > 0 {
		res.MBPerS = float64(r.Bytes) / r.Duration.Seconds() / 1e6
	}
	if tr := trace.FromContext(req.Context()); tr != nil {
		res.TraceID = tr.ID()
		// The inline explain block is opt-in (?trace=1); a request that
		// was traced only because it carried a traceparent header gets
		// the ID but keeps the wire result lean.
		if req.URL.Query().Get("trace") != "" {
			res.Explain = buildExplain(tr)
		}
	}
	if req.URL.Query().Get("first") != "" {
		start := m.DFA().Start()
		if job.HasStart {
			start = job.Start
		}
		hit := m.Runner().FirstAccepting(input, start)
		res.FirstMatch = &hit
	}
	writeJSON(w, res)
}

// handleBatch is POST /v1/batch: NDJSON jobs in (one serverapi.BatchJob
// per line), NDJSON results out — streamed in completion order as the
// engine finishes them, with a BatchTrailer summary as the final line.
// The request context cancels the whole batch, so a disconnecting
// client releases the pool mid-batch.
func (s *server) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST NDJSON jobs to /v1/batch")
		return
	}
	ctx := req.Context()
	s.metrics.EngineBatches.Inc()

	// Parse every request line up front; the body is bounded by
	// maxBody, so the job list is too.
	sc := bufio.NewScanner(http.MaxBytesReader(w, req.Body, s.maxBody))
	sc.Buffer(make([]byte, 64<<10), bufLimit(s.maxBody))
	type lineJob struct {
		idx int
		job engine.Job
	}
	var jobs []lineJob
	var preFailed []serverapi.BatchResult
	idx := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		job, err := parseBatchLine(line)
		if err != nil {
			preFailed = append(preFailed, serverapi.BatchResult{Index: idx, Error: err.Error()})
		} else {
			jobs = append(jobs, lineJob{idx: idx, job: job})
		}
		idx++
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading batch body: %v", err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	t0 := time.Now()
	summary := serverapi.BatchSummary{Jobs: idx}
	for _, r := range preFailed {
		summary.Errors++
		_ = enc.Encode(r)
	}

	out := make(chan engine.Result, len(jobs))
	go func() {
		for _, lj := range jobs {
			if err := s.engine.Submit(ctx, lj.job, lj.idx, out); err != nil {
				out <- engine.Result{Index: lj.idx, Machine: lj.job.Machine, Bytes: len(lj.job.Input), Err: err}
			}
		}
	}()
	for range jobs {
		r := <-out
		br := serverapi.BatchResult{
			Index:      r.Index,
			Machine:    r.Machine,
			Final:      r.Final,
			Accepts:    r.Accepts,
			Bytes:      r.Bytes,
			Lane:       r.Lane,
			Multicore:  r.Multicore,
			Degraded:   r.Degraded,
			Strategy:   r.Strategy,
			DurationNs: int64(r.Duration),
		}
		summary.Bytes += int64(r.Bytes)
		switch {
		case r.Err == nil:
			summary.OK++
			switch r.Lane {
			case engine.LaneMulticore:
				summary.Multicore++
			case engine.LaneSpeculative:
				summary.Speculative++
			case engine.LaneCluster:
				summary.Cluster++
			default:
				summary.SingleCore++
			}
			if r.Degraded {
				summary.Degraded++
			}
		default:
			br.Error = r.Err.Error()
			summary.Errors++
			if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
				summary.Canceled++
			}
		}
		_ = enc.Encode(br)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.DurationNs = int64(time.Since(t0))
	_ = enc.Encode(serverapi.BatchTrailer{Summary: summary})
}

// parseBatchLine decodes one NDJSON request line into an engine job.
func parseBatchLine(line []byte) (engine.Job, error) {
	var bj serverapi.BatchJob
	if err := json.Unmarshal(line, &bj); err != nil {
		return engine.Job{}, fmt.Errorf("bad job line: %v", err)
	}
	job := engine.Job{Machine: bj.Machine, Timeout: time.Duration(bj.TimeoutMs) * time.Millisecond}
	switch {
	case bj.InputB64 != "" && bj.Input != "":
		return engine.Job{}, errors.New("bad job line: both input and input_b64 set")
	case bj.InputB64 != "":
		raw, err := base64.StdEncoding.DecodeString(bj.InputB64)
		if err != nil {
			return engine.Job{}, fmt.Errorf("bad input_b64: %v", err)
		}
		job.Input = raw
	default:
		job.Input = []byte(bj.Input)
	}
	if bj.Start != nil {
		if *bj.Start < 0 || *bj.Start > int(^fsm.State(0)) {
			return engine.Job{}, fmt.Errorf("bad start state %d", *bj.Start)
		}
		job.Start, job.HasStart = fsm.State(*bj.Start), true
	}
	if bj.Strategy != "" {
		st, err := core.ParseStrategy(bj.Strategy)
		if err != nil {
			return engine.Job{}, fmt.Errorf("bad strategy %q: %v", bj.Strategy, err)
		}
		job.Strategy = st
	}
	return job, nil
}

// bufLimit clamps maxBody to a scanner line limit.
func bufLimit(maxBody int64) int {
	const cap = 1 << 30
	if maxBody > cap {
		return cap
	}
	return int(maxBody) + 1
}

// machineInfo assembles the wire view of one registered machine. The
// caller must hold s.mu (read or write).
func (s *server) machineInfo(name string, m *engine.Machine) serverapi.MachineInfo {
	meta := s.meta[name]
	info := serverapi.MachineInfo{
		Name:        name,
		Pattern:     meta.pattern,
		Strategy:    m.Runner().Strategy(),
		Procs:       s.engine.Procs(),
		Fingerprint: m.Fingerprint(),
		Source:      meta.source,
		Kind:        m.Kind().String(),
		Stats:       m.DFA().Stats(),
	}
	if t := m.Transducer(); t != nil {
		info.OutputTableBytes = t.TableBytes()
	}
	return info
}

// handleMachines serves the registry collection: GET lists, POST
// compiles and registers (the dynamic half of the registry).
func (s *server) handleMachines(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		s.mu.RLock()
		out := make([]serverapi.MachineInfo, 0, len(s.order))
		for _, name := range s.order {
			if m := s.engine.Machine(name); m != nil {
				out = append(out, s.machineInfo(name, m))
			}
		}
		s.mu.RUnlock()
		writeJSON(w, out)
	case http.MethodPost:
		s.handleRegister(w, req)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET lists machines; POST a serverapi.RegisterRequest to register one")
	}
}

// handleRegister is POST /v1/machines: compile-and-register, returning
// compile stats and the plan fingerprint.
func (s *server) handleRegister(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	var rr serverapi.RegisterRequest
	if err := json.Unmarshal(body, &rr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad register request: %v", err))
		return
	}
	if rr.Name == "" || rr.Pattern == "" {
		writeError(w, http.StatusBadRequest, "register request needs name and pattern")
		return
	}
	strategy := rr.Strategy
	if strategy == core.Auto {
		strategy = s.strategy
	}
	t0 := time.Now()
	m, cached, err := s.registerMachine(rr.Name, rr.Pattern, strategy, "api")
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "duplicate machine") {
			status = http.StatusConflict
		}
		writeError(w, status, err.Error())
		return
	}
	s.log.Info("machine registered",
		"machine", rr.Name,
		"source", "api",
		"strategy", m.Runner().Strategy().String(),
		"fingerprint", m.Fingerprint(),
		"plan_cached", cached,
	)
	s.mu.RLock()
	res := serverapi.RegisterResult{
		Machine:    s.machineInfo(rr.Name, m),
		PlanCached: cached,
		CompileNs:  int64(time.Since(t0)),
		TableBytes: m.Plan().TableBytes(),
		AutoReason: m.Plan().AutoReason(),
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// machineSelection assembles the wire view of one machine's current
// adaptive-dispatch decision.
func machineSelection(name string, m *engine.Machine) serverapi.MachineSelection {
	sel := m.Selection()
	ms := serverapi.MachineSelection{
		Machine:  name,
		Lane:     sel.Lane,
		Strategy: sel.Strategy,
		Reason:   sel.Reason,
		Kind:     m.Kind().String(),
	}
	if t := m.Transducer(); t != nil {
		ms.OutputTableBytes = t.TableBytes()
	}
	return ms
}

// handleMachineByName serves /v1/machines/{name}: GET one entry,
// DELETE to unregister, and the /v1/machines/{name}/profile
// sub-resource: the observed perf profile joined with the adaptive
// selector's current decision.
func (s *server) handleMachineByName(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, serverapi.Version+"/machines/")
	name, sub, hasSub := strings.Cut(rest, "/")
	if name == "" || (hasSub && sub != "profile") {
		writeError(w, http.StatusNotFound, "want /v1/machines/{name} or /v1/machines/{name}/profile")
		return
	}
	if hasSub {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET /v1/machines/{name}/profile")
			return
		}
		m := s.engine.Machine(name)
		if m == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q", name))
			return
		}
		s.mu.RLock()
		mp := serverapi.MachineProfile{
			Machine:   s.machineInfo(name, m),
			Selection: machineSelection(name, m),
		}
		s.mu.RUnlock()
		if p, ok := s.profiles.Profile(name); ok {
			mp.Profile = &p
		}
		writeJSON(w, mp)
		return
	}
	switch req.Method {
	case http.MethodGet:
		m := s.engine.Machine(name)
		if m == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q", name))
			return
		}
		s.mu.RLock()
		info := s.machineInfo(name, m)
		s.mu.RUnlock()
		writeJSON(w, info)
	case http.MethodDelete:
		if !s.unregisterMachine(name) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q", name))
			return
		}
		s.log.Info("machine unregistered", "machine", name)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE /v1/machines/{name}")
	}
}

// reloadPatterns re-reads the patterns file (SIGHUP) and reconciles
// the registry's file-sourced machines with it: new names are
// registered, changed patterns are recompiled, and names gone from
// the file are unregistered. Machines registered over the API (or the
// built-in defaults) are left alone. A file that fails to parse —
// including duplicate names — aborts the reload with no changes.
func (s *server) reloadPatterns(path string) error {
	specs, err := loadPatternsFile(path)
	if err != nil {
		return err
	}
	type entry struct{ name, pattern string }
	desired := make([]entry, 0, len(specs))
	for _, spec := range specs {
		name, pat, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return fmt.Errorf("pattern %q: want NAME=REGEX", spec)
		}
		// Compile up front so a bad regex aborts before any mutation.
		if _, err := regex.Compile(pat, regex.Options{}); err != nil {
			return fmt.Errorf("pattern %q: %v", name, err)
		}
		desired = append(desired, entry{name: name, pattern: pat})
	}

	s.mu.RLock()
	current := make(map[string]machineMeta, len(s.meta))
	for name, meta := range s.meta {
		current[name] = meta
	}
	s.mu.RUnlock()

	inFile := make(map[string]bool, len(desired))
	var added, replaced, removed int
	for _, e := range desired {
		inFile[e.name] = true
		meta, exists := current[e.name]
		switch {
		case exists && meta.source == "api":
			s.log.Warn("reload: name held by API-registered machine, skipping", "machine", e.name)
		case exists && meta.pattern == e.pattern:
			// Unchanged; keep the live machine (and its warm plan).
		case exists:
			s.unregisterMachine(e.name)
			if _, _, err := s.registerMachine(e.name, e.pattern, s.strategy, "file"); err != nil {
				return fmt.Errorf("pattern %q: %v", e.name, err)
			}
			replaced++
		default:
			if _, _, err := s.registerMachine(e.name, e.pattern, s.strategy, "file"); err != nil {
				return fmt.Errorf("pattern %q: %v", e.name, err)
			}
			added++
		}
	}
	for name, meta := range current {
		if (meta.source == "file" || meta.source == "default") && !inFile[name] {
			s.unregisterMachine(name)
			removed++
		}
	}
	s.log.Info("patterns reloaded", "file", path, "machines", len(desired),
		"added", added, "replaced", replaced, "removed", removed)
	return nil
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError emits the shared JSON error envelope. The stable
// machine-readable code is derived from the HTTP status so every
// handler produces the same envelope without threading codes by hand.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serverapi.Error{Error: msg, Code: errorCode(status)})
}

// errorCode maps an HTTP status to its serverapi error code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return serverapi.CodeBadRequest
	case http.StatusNotFound:
		return serverapi.CodeNotFound
	case http.StatusMethodNotAllowed:
		return serverapi.CodeMethodNotAllowed
	case http.StatusConflict:
		return serverapi.CodeConflict
	case http.StatusRequestEntityTooLarge:
		return serverapi.CodeTooLarge
	case http.StatusTooManyRequests:
		return serverapi.CodeQueueFull
	case http.StatusGatewayTimeout:
		return serverapi.CodeTimeout
	case http.StatusServiceUnavailable:
		return serverapi.CodeCanceled
	default:
		return serverapi.CodeInternal
	}
}

// writeEngineError maps engine failure modes to HTTP statuses.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrUnknownMachine):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, engine.ErrBadStart), errors.Is(err, engine.ErrNotTransducer):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, engine.ErrQueueFull):
		// Load shed by TrySubmit: the canonical "back off and retry".
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// mux assembles the full route table, including the expvar and pprof
// debug surfaces that normally ride on http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	// Publishing makes the shared sink visible at /debug/vars next to
	// the runtime's memstats; an "already taken" error just means an
	// earlier server in this process claimed the name (tests).
	_ = s.metrics.Publish("dpfsm")
	mux := http.NewServeMux()
	// The metrics exposition concatenates the FSM families with the
	// curated runtime/metrics bridge (GC pauses, heap, goroutines,
	// scheduler latency) — one scrape, both layers.
	metricsHandler := func(w http.ResponseWriter, req *http.Request) {
		// OpenMetrics negotiation: exemplars on the latency histogram
		// are part of both formats here, but an OpenMetrics scraper
		// (Prometheus with exemplar storage) asks for them explicitly.
		ct := "text/plain; version=0.0.4; charset=utf-8"
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			ct = "application/openmetrics-text; version=1.0.0; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		s.metrics.WritePrometheus(w)
		telemetry.WriteRuntimePrometheus(w)
	}

	// Versioned surface. Every route goes through instrument (access
	// log); run and batch additionally accept tracing.
	mux.HandleFunc(serverapi.Version+"/run", s.instrument(serverapi.Version+"/run", true, s.handleRun))
	mux.HandleFunc(serverapi.Version+"/transduce", s.instrument(serverapi.Version+"/transduce", true, s.handleTransduce))
	mux.HandleFunc(serverapi.Version+"/batch", s.instrument(serverapi.Version+"/batch", true, s.handleBatch))
	mux.HandleFunc(serverapi.Version+"/machines", s.instrument(serverapi.Version+"/machines", false, s.handleMachines))
	mux.HandleFunc(serverapi.Version+"/machines/", s.instrument(serverapi.Version+"/machines/{name}", false, s.handleMachineByName))
	mux.HandleFunc(serverapi.Version+"/snapshot", s.instrument(serverapi.Version+"/snapshot", false, s.handleSnapshot))
	mux.HandleFunc(serverapi.Version+"/status", s.instrument(serverapi.Version+"/status", false, s.handleStatus))
	mux.Handle(serverapi.Version+"/metrics", s.instrument(serverapi.Version+"/metrics", false, http.HandlerFunc(metricsHandler)))
	mux.HandleFunc(serverapi.Version+"/traces", s.instrument(serverapi.Version+"/traces", false, s.handleTraces))
	mux.HandleFunc(serverapi.Version+"/traces/", s.instrument(serverapi.Version+"/traces/{id}", false, s.handleTraceByID))
	mux.HandleFunc(serverapi.Version+"/slo", s.instrument(serverapi.Version+"/slo", false, s.handleSLO))

	// Peer protocol: binary chunk tasks in, composition vectors out.
	// Always mounted — a node with no -peers of its own still serves
	// chunks for coordinators that list it.
	peerHandler := s.peer.Handler().ServeHTTP
	mux.HandleFunc(cluster.ExecPath, s.instrument(cluster.ExecPath, false, peerHandler))
	mux.HandleFunc(cluster.PlansPath, s.instrument(cluster.PlansPath, false, peerHandler))

	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Probes stay uninstrumented: they run every few seconds per
	// prober, and their outcomes are probe contracts, not traffic the
	// access log or the SLO should count.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

// loadPatternsFile reads NAME=REGEX lines; blank lines and #-comments
// are skipped. Duplicate names are an error — last-write-wins would
// silently shadow an earlier pattern, which for a rule set means a
// rule that quietly stops matching.
func loadPatternsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]int) // name -> first line number
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, _, ok := strings.Cut(line, "="); ok && name != "" {
			if first, dup := seen[name]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate machine name %q (first defined on line %d)",
					path, i+1, name, first)
			}
			seen[name] = i + 1
		}
		out = append(out, line)
	}
	return out, nil
}

func main() {
	var (
		addr            = flag.String("addr", ":8377", "listen address")
		strat           = flag.String("strategy", "auto", "execution strategy, one of: "+strings.Join(core.Strategies(), " "))
		procs           = flag.Int("procs", 0, "multicore width for large inputs (0 = NumCPU, 1 = single-core only)")
		maxBody         = flag.Int64("maxbody", 64<<20, "maximum POSTed body size in bytes")
		patternsFile    = flag.String("patterns-file", "", "file of NAME=REGEX machines, one per line (default: a small IDS rule set); SIGHUP re-reads it")
		planDir         = flag.String("plan-cache-dir", "", "directory of serialized compiled plans; machines whose plans are present skip table construction across restarts, and per-machine perf profiles persist next to them")
		perfSave        = flag.Duration("perf-save-interval", 30*time.Second, "how often per-machine perf profiles are persisted to -plan-cache-dir (0 disables the periodic save; shutdown always flushes)")
		logFormat       = flag.String("log-format", "text", `log output format: "text" or "json"`)
		traceBuf        = flag.Int("trace-buf", trace.DefaultRecorderCapacity, "flight-recorder capacity: completed request traces retained for /v1/traces")
		traceSample     = flag.Float64("trace-sample", 0, "head-sample rate in traces/second: trace every request, retain this many representative ones per second plus all slow/error/shed/mispredict tails (0 = trace only on request)")
		traceSlow       = flag.Duration("trace-slow", trace.DefaultSlowThreshold, "duration at or above which a sampled trace is always retained")
		otlpEndpoint    = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL (e.g. http://localhost:4318); empty disables export")
		otlpInterval    = flag.Duration("otlp-interval", otlp.DefaultInterval, "OTLP metrics-push and trace-flush interval")
		sloAvail        = flag.Float64("slo-availability", slo.DefaultAvailabilityTarget, "availability objective: target fraction of requests neither shed nor erroring")
		sloLatency      = flag.Duration("slo-latency-threshold", slo.DefaultLatencyThreshold, "latency objective threshold: completed requests at or over this count against the latency SLO")
		peersFlag       = flag.String("peers", "", "comma-separated base URLs of peer fsmserve nodes (e.g. http://host:8377); non-empty enables the distributed cluster lane")
		clusterChunk    = flag.Int("cluster-chunk", 0, "bytes per chunk fanned out to peers (0 = coordinator default)")
		clusterMin      = flag.Int("cluster-min", 0, "input size in bytes at or above which jobs take the cluster lane (0 = 4x the large-input threshold)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "fsmserve: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	strategy, err := core.ParseStrategy(*strat)
	if err != nil {
		fatal("bad -strategy", err)
	}
	var patterns []string
	if *patternsFile != "" {
		patterns, err = loadPatternsFile(*patternsFile)
		if err != nil {
			fatal("loading -patterns-file", err)
		}
	}
	srv, err := newServer(patterns, strategy, *procs, *maxBody, *planDir)
	if err != nil {
		fatal("building server", err)
	}
	srv.log = logger
	// The compiled-in tokenizers ride along as transducer machines for
	// /v1/transduce; a patterns file claiming their names wins.
	srv.registerBuiltinTransducers()
	srv.recorder = trace.NewRecorder(*traceBuf)
	srv.slo = slo.New(slo.Config{
		AvailabilityTarget: *sloAvail,
		LatencyThreshold:   *sloLatency,
	})
	if *traceSample > 0 {
		srv.sampler = trace.NewSampler(trace.SamplerConfig{
			HeadPerSec:    *traceSample,
			SlowThreshold: *traceSlow,
			KeepAttrs:     []string{engine.AttrMispredict},
		})
	}
	if *peersFlag != "" {
		var peerList []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if err := srv.enableCluster(peerList, *clusterChunk, *clusterMin); err != nil {
			fatal("bad -peers", err)
		}
		logger.Info("cluster lane enabled",
			"peers", peerList,
			"chunk_bytes", srv.engine.Cluster().ChunkBytes(),
			"min_bytes", srv.engine.ClusterMinBytes(),
		)
	}
	if *otlpEndpoint != "" {
		srv.exporter, err = otlp.New(otlp.Config{
			Endpoint:    *otlpEndpoint,
			ServiceName: "fsmserve",
			Snapshot:    srv.metrics.Snapshot,
			Interval:    *otlpInterval,
		})
		if err != nil {
			fatal("bad -otlp-endpoint", err)
		}
		logger.Info("otlp export enabled", "endpoint", *otlpEndpoint, "interval", *otlpInterval)
	}
	for _, name := range srv.order {
		m := srv.engine.Machine(name)
		stats := m.DFA().Stats()
		logger.Info("machine registered",
			"machine", name,
			"states", stats.States,
			"max_range", stats.MaxRange,
			"strategy", m.Runner().Strategy().String(),
			"fingerprint", m.Fingerprint(),
			"plan_cached", m.PlanCached(),
			"procs", srv.engine.Procs(),
		)
	}

	// SIGHUP re-reads the patterns file and reconciles the registry;
	// only meaningful when a file was given.
	if *patternsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := srv.reloadPatterns(*patternsFile); err != nil {
					logger.Error("reload failed; keeping current machines", "file", *patternsFile, "err", err)
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Periodic profile persistence, so a crash loses at most one
	// interval of observations; the clean-shutdown path below flushes.
	go srv.saveProfilesLoop(ctx.Done(), *perfSave)
	listenErr := make(chan error, 1)
	go func() { listenErr <- httpSrv.ListenAndServe() }()
	srv.markReady()
	logger.Info("serving",
		"addr", *addr,
		"routes", serverapi.Version+"/{run,batch,machines,snapshot,metrics,traces}",
		"trace_buf", srv.recorder.Cap(),
	)

	select {
	case err := <-listenErr:
		fatal("listen", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish,
	// then drain the engine's queued jobs — all under one deadline. A
	// second signal kills the process the usual way (stop() above
	// restored the default handler).
	stop()
	// Flip /readyz first: the load balancer stops sending new traffic
	// while the listener finishes what is already in flight.
	srv.beginDrain()
	logger.Info("shutting down", "deadline", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.engine.Shutdown(sctx); err != nil {
		logger.Error("engine shutdown", "err", err)
	}
	// The exporter drains last so traces recorded during the HTTP and
	// engine drains still ship.
	if err := srv.exporter.Shutdown(sctx); err != nil {
		logger.Error("otlp shutdown", "err", err)
	}
	if err := srv.profiles.SaveAll(); err != nil {
		logger.Error("persisting perf profiles", "err", err)
	}
	logger.Info("stopped")
}
