// Command fsmserve runs compiled FSMs as an HTTP service with live
// telemetry — the observability half of the ROADMAP's production
// north-star. Input bytes are POSTed to /run and executed by a
// data-parallel core.Runner; every run feeds the shared telemetry
// sink, so the paper's quantitative claims (shuffles per symbol §6.1,
// convergence width §5.2, multicore phase times §3.4) are observable
// on live traffic instead of requiring an offline ProfileInput replay.
//
// Endpoints:
//
//	POST /run?machine=NAME[&start=Q][&first=1]  run the input, JSON result
//	GET  /machines                              list machines + static stats
//	GET  /snapshot                              telemetry snapshot (JSON)
//	GET  /metrics                               Prometheus text format
//	GET  /debug/vars                            expvar (includes "dpfsm")
//	GET  /debug/pprof/*                         net/http/pprof
//	GET  /healthz                               liveness probe
//
// Usage:
//
//	fsmserve -addr :8377 \
//	  -pattern 'sqli=UNION\s+SELECT' -pattern 'traversal=\.\./\.\./' \
//	  -procs 0 -strategy auto
//
// Each -pattern is NAME=REGEX (Snort-style "contains" semantics); with
// no -pattern flags a small default intrusion-detection set is served.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/regex"
	"dpfsm/internal/telemetry"
)

// machine is one compiled pattern served by the process.
type machine struct {
	Name     string    `json:"name"`
	Pattern  string    `json:"pattern"`
	Strategy string    `json:"strategy"`
	Procs    int       `json:"procs"`
	Stats    fsm.Stats `json:"stats"`
	runner   *core.Runner
	dfa      *fsm.DFA
}

// server holds the machines and the shared telemetry sink.
type server struct {
	machines map[string]*machine
	order    []string // first pattern is the default machine
	metrics  *telemetry.Metrics
	maxBody  int64
}

// patternList collects repeated -pattern NAME=REGEX flags.
type patternList []string

func (p *patternList) String() string     { return strings.Join(*p, ",") }
func (p *patternList) Set(v string) error { *p = append(*p, v); return nil }

// defaultPatterns serve the zero-config case: a recognizable slice of
// the Snort-shaped workload the benchmarks use.
var defaultPatterns = []string{
	`sqli=UNION\s+SELECT`,
	`traversal=\.\./\.\./`,
	`cgi=/cgi-bin/.*\.(pl|sh)`,
	`nopsled=\x90\x90\x90\x90`,
}

func newServer(patterns []string, strategy core.Strategy, procs int, maxBody int64) (*server, error) {
	if len(patterns) == 0 {
		patterns = defaultPatterns
	}
	s := &server{
		machines: make(map[string]*machine),
		metrics:  new(telemetry.Metrics),
		maxBody:  maxBody,
	}
	for _, spec := range patterns {
		name, pat, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("pattern %q: want NAME=REGEX", spec)
		}
		if _, dup := s.machines[name]; dup {
			return nil, fmt.Errorf("duplicate machine name %q", name)
		}
		d, err := regex.Compile(pat, regex.Options{})
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %v", name, err)
		}
		r, err := core.New(d,
			core.WithStrategy(strategy),
			core.WithProcs(procs),
			core.WithTelemetry(s.metrics))
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %v", name, err)
		}
		s.machines[name] = &machine{
			Name:     name,
			Pattern:  pat,
			Strategy: r.Strategy().String(),
			Procs:    r.Procs(),
			Stats:    d.Stats(),
			runner:   r,
			dfa:      d,
		}
		s.order = append(s.order, name)
	}
	return s, nil
}

// runResult is the /run response body.
type runResult struct {
	Machine    string    `json:"machine"`
	Bytes      int       `json:"bytes"`
	Final      fsm.State `json:"final_state"`
	Accepts    bool      `json:"accepts"`
	FirstMatch *int      `json:"first_match,omitempty"`
	DurationNs int64     `json:"duration_ns"`
	MBPerS     float64   `json:"mb_per_s"`
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST an input body to /run", http.StatusMethodNotAllowed)
		return
	}
	name := req.URL.Query().Get("machine")
	if name == "" {
		name = s.order[0]
	}
	m, ok := s.machines[name]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown machine %q (see /machines)", name), http.StatusNotFound)
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusRequestEntityTooLarge)
		return
	}
	start := m.dfa.Start()
	if qs := req.URL.Query().Get("start"); qs != "" {
		var q int
		if _, err := fmt.Sscanf(qs, "%d", &q); err != nil || q < 0 || q >= m.dfa.NumStates() {
			http.Error(w, fmt.Sprintf("bad start state %q", qs), http.StatusBadRequest)
			return
		}
		start = fsm.State(q)
	}

	t0 := time.Now()
	final := m.runner.Final(input, start)
	res := runResult{
		Machine: name,
		Bytes:   len(input),
		Final:   final,
		Accepts: m.dfa.Accepting(final),
	}
	if req.URL.Query().Get("first") != "" {
		hit := m.runner.FirstAccepting(input, start)
		res.FirstMatch = &hit
	}
	dur := time.Since(t0)
	res.DurationNs = int64(dur)
	if dur > 0 {
		res.MBPerS = float64(len(input)) / dur.Seconds() / 1e6
	}
	writeJSON(w, res)
}

func (s *server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	out := make([]*machine, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.machines[name])
	}
	writeJSON(w, out)
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// mux assembles the full route table, including the expvar and pprof
// debug surfaces that normally ride on http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	// Publishing makes the shared sink visible at /debug/vars next to
	// the runtime's memstats; an "already taken" error just means an
	// earlier server in this process claimed the name (tests).
	_ = s.metrics.Publish("dpfsm")
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/machines", s.handleMachines)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.Handle("/metrics", s.metrics.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func main() {
	var (
		patterns patternList
		addr     = flag.String("addr", ":8377", "listen address")
		strat    = flag.String("strategy", "auto", "execution strategy: auto sequential base base-ilp convergence range range+conv")
		procs    = flag.Int("procs", 0, "multicore width per run (0 = NumCPU, 1 = single-core)")
		maxBody  = flag.Int64("maxbody", 64<<20, "maximum POSTed input size in bytes")
	)
	flag.Var(&patterns, "pattern", "NAME=REGEX machine to serve (repeatable; default: a small IDS rule set)")
	flag.Parse()

	strategy, err := core.ParseStrategy(*strat)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newServer(patterns, strategy, *procs, *maxBody)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range srv.order {
		m := srv.machines[name]
		log.Printf("machine %q: %d states, max range %d, strategy %s, procs %d",
			name, m.Stats.States, m.Stats.MaxRange, m.Strategy, m.Procs)
	}
	log.Printf("serving on %s — POST /run, GET /metrics /snapshot /machines /debug/vars /debug/pprof/", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}
