package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/serverapi"
)

// transduceNDJSON posts body to /v1/transduce and decodes the stream
// into header, span lines, and trailer.
func transduceNDJSON(t *testing.T, ts *httptest.Server, query, body string) (serverapi.TransduceHeader, []serverapi.TransduceSpan, serverapi.TransduceTrailer) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/transduce"+query, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var (
		header  serverapi.TransduceHeader
		spans   []serverapi.TransduceSpan
		trailer serverapi.TransduceTrailer
		line    int
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		switch {
		case line == 0:
			if err := json.Unmarshal(raw, &header); err != nil || header.Machine == "" {
				t.Fatalf("bad header line %s: %v", raw, err)
			}
		case bytes.Contains(raw, []byte(`"summary"`)):
			if err := json.Unmarshal(raw, &trailer); err != nil {
				t.Fatalf("bad trailer %s: %v", raw, err)
			}
		default:
			var sp serverapi.TransduceSpan
			if err := json.Unmarshal(raw, &sp); err != nil {
				t.Fatalf("bad span line %s: %v", raw, err)
			}
			spans = append(spans, sp)
		}
		line++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return header, spans, trailer
}

func TestTransduceEndpoint(t *testing.T) {
	srv, err := newServer(nil, core.Auto, 2, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.registerBuiltinTransducers()
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	doc := `<p class="x">hi &amp; bye</p><!-- c -->`
	header, spans, trailer := transduceNDJSON(t, ts, "?machine=htmltok", doc)
	if header.Machine != "htmltok" || header.Kind != "mealy" || header.Bytes != len(doc) {
		t.Fatalf("header %+v", header)
	}
	if trailer.Summary.Spans != len(spans) || len(spans) == 0 {
		t.Fatalf("trailer says %d spans, stream carried %d", trailer.Summary.Spans, len(spans))
	}

	// The stream must agree with the library tokenizer exactly.
	tok, err := htmltok.NewTokenizer()
	if err != nil {
		t.Fatal(err)
	}
	want := tok.Tokenize([]byte(doc))
	if len(want) != len(spans) {
		t.Fatalf("%d spans, library tokenizer says %d", len(spans), len(want))
	}
	var covered int64
	for i, sp := range spans {
		if sp.Start != want[i].Start || sp.End != want[i].End || sp.Out != int(want[i].Type) {
			t.Fatalf("span %d = %+v, want %+v", i, sp, want[i])
		}
		covered += int64(sp.End - sp.Start)
	}
	if trailer.Summary.OutputBytes != covered {
		t.Fatalf("summary output_bytes %d, spans cover %d", trailer.Summary.OutputBytes, covered)
	}

	// ?strategy= override is honored and reported.
	_, _, tr2 := transduceNDJSON(t, ts, "?machine=htmltok&strategy=base", doc)
	if tr2.Summary.Strategy != "base" {
		t.Fatalf("override strategy reported %q", tr2.Summary.Strategy)
	}

	// Acceptor machines reject transduce with a bad_request envelope.
	resp, err := http.Post(ts.URL+"/v1/transduce?machine=sqli", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("acceptor transduce: status %d", resp.StatusCode)
	}
	var envelope serverapi.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Code != serverapi.CodeBadRequest {
		t.Fatalf("acceptor transduce envelope: %+v err %v", envelope, err)
	}
}

// TestStatusReportsMachineKind is the registry-truthfulness check: the
// status document's per-machine selections and /v1/machines entries
// must distinguish acceptors from transducers and size the λ table.
func TestStatusReportsMachineKind(t *testing.T) {
	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.registerBuiltinTransducers()
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st serverapi.Status
	decodeInto(t, resp, &st)
	byName := map[string]serverapi.MachineSelection{}
	for _, sel := range st.Selections {
		byName[sel.Machine] = sel
	}
	if sel := byName["sqli"]; sel.Kind != "acceptor" || sel.OutputTableBytes != 0 {
		t.Fatalf("sqli selection %+v, want acceptor with no output table", sel)
	}
	sel, ok := byName["htmltok"]
	if !ok || sel.Kind != "mealy" || sel.OutputTableBytes == 0 {
		t.Fatalf("htmltok selection %+v, want mealy with output table", sel)
	}

	infos := machineInfos(t, ts)
	if in := infos["htmltok"]; in.Kind != "mealy" || in.OutputTableBytes == 0 || in.Source != "builtin" {
		t.Fatalf("htmltok machine info %+v", in)
	}
	if in := infos["sqli"]; in.Kind != "acceptor" || in.OutputTableBytes != 0 {
		t.Fatalf("sqli machine info %+v", in)
	}
}
