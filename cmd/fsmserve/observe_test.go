package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/otlp"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/slo"
	"dpfsm/internal/trace"
)

// Integration coverage for the export-and-health surface: /readyz,
// /v1/slo, sampled trace retention through instrument, OTLP delivery
// to a collector stub, and the exemplar joining /v1/metrics to the
// flight recorder.

func getReadiness(t *testing.T, url string) (int, serverapi.Readiness) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rd serverapi.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rd
}

func TestReadyzLifecycle(t *testing.T) {
	srv, ts := testServer(t)

	// Fresh server: main has not marked it ready yet.
	code, rd := getReadiness(t, ts.URL)
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("pre-ready probe: code=%d ready=%v", code, rd.Ready)
	}
	if len(rd.Reasons) != 1 || rd.Reasons[0] != "starting" {
		t.Fatalf("pre-ready reasons: %v", rd.Reasons)
	}

	srv.markReady()
	code, rd = getReadiness(t, ts.URL)
	if code != http.StatusOK || !rd.Ready || len(rd.Reasons) != 0 {
		t.Fatalf("ready probe: code=%d %+v", code, rd)
	}

	// Graceful shutdown flips it back before the listener stops.
	srv.beginDrain()
	code, rd = getReadiness(t, ts.URL)
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("draining probe: code=%d ready=%v", code, rd.Ready)
	}
	if len(rd.Reasons) != 1 || rd.Reasons[0] != "draining" {
		t.Fatalf("draining reasons: %v", rd.Reasons)
	}
}

func TestReadyzSLOFastBurn(t *testing.T) {
	srv, ts := testServer(t)
	srv.markReady()

	// Healthy traffic first: the probe stays up.
	for i := 0; i < 30; i++ {
		srv.slo.Observe(http.StatusOK, time.Millisecond)
	}
	if code, rd := getReadiness(t, ts.URL); code != http.StatusOK {
		t.Fatalf("healthy probe: code=%d %+v", code, rd)
	}

	// An induced incident: a burst of shed requests far past the
	// fast-burn threshold in both windows (they share the burst).
	for i := 0; i < 200; i++ {
		srv.slo.Observe(http.StatusTooManyRequests, 0)
	}
	code, rd := getReadiness(t, ts.URL)
	if code != http.StatusServiceUnavailable || rd.Ready {
		t.Fatalf("burning probe: code=%d ready=%v", code, rd.Ready)
	}
	if len(rd.Reasons) != 1 || rd.Reasons[0] != "slo_fast_burn" {
		t.Fatalf("burning reasons: %v", rd.Reasons)
	}

	// The /v1/slo report behind the probe shows the verdict and the
	// shed classification.
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.BurnExceeded {
		t.Fatalf("report should agree with the probe: %+v", rep)
	}
	if rep.Fast.Shed < 200 || rep.Slow.Shed < 200 {
		t.Fatalf("shed accounting: fast=%d slow=%d", rep.Fast.Shed, rep.Slow.Shed)
	}
	if rep.AvailabilityTarget != slo.DefaultAvailabilityTarget {
		t.Fatalf("objective echo: %v", rep.AvailabilityTarget)
	}
}

func TestSLOObservesHTTPBoundary(t *testing.T) {
	_, ts := testServer(t)

	// Real requests through instrument land in the tracker — including
	// a 404, which is client-visible but not an availability error.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/run", "", strings.NewReader("hello"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/v1/run?machine=nope", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r2, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var rep slo.Report
	if err := json.NewDecoder(r2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Fast.Total < 6 {
		t.Fatalf("tracker should have seen the requests: %+v", rep.Fast)
	}
	if rep.Fast.Errors != 0 || rep.Fast.Shed != 0 {
		t.Fatalf("404s are not availability errors: %+v", rep.Fast)
	}
	if rep.BurnExceeded {
		t.Fatalf("healthy traffic should not burn: %+v", rep)
	}
}

// TestSamplerRetentionThroughInstrument drives the full instrument
// path with every outcome class and checks the retention policy:
// tails (slow, error, shed) are kept 100%, the rest head-sampled.
func TestSamplerRetentionThroughInstrument(t *testing.T) {
	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// One head token, effectively no refill, 30ms slow threshold.
	srv.sampler = trace.NewSampler(trace.SamplerConfig{
		HeadPerSec:    0.0001,
		HeadBurst:     1,
		SlowThreshold: 30 * time.Millisecond,
	})

	do := func(h http.HandlerFunc, n int) {
		wrapped := srv.instrument("/probe", true, h)
		for i := 0; i < n; i++ {
			wrapped(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/probe", nil))
		}
	}
	ok := func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) }
	fail := func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusBadGateway) }
	shed := func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusTooManyRequests) }
	slow := func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(40 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}

	do(ok, 20)  // 1 head-kept, 19 rate-dropped
	do(fail, 5) // all kept: error tail
	do(shed, 5) // all kept: shed tail
	do(slow, 3) // all kept: slow tail

	st := srv.sampler.Stats()
	if st.Head != 1 || st.Dropped != 19 {
		t.Errorf("head sampling: head=%d dropped=%d", st.Head, st.Dropped)
	}
	if st.TailError != 5 || st.TailShed != 5 || st.TailSlow != 3 {
		t.Errorf("tails must be kept 100%%: %+v", st)
	}
	if got, want := len(srv.recorder.Snapshot()), 1+5+5+3; got != want {
		t.Errorf("recorder retained %d traces, want %d", got, want)
	}
}

// collectorStub is a minimal OTLP/HTTP collector: it decodes and
// retains every exported document for assertions.
type collectorStub struct {
	mu      sync.Mutex
	traces  []otlpTraceDoc
	metrics []otlpMetricDoc
}

type otlpTraceDoc struct {
	ResourceSpans []struct {
		Resource struct {
			Attributes []struct {
				Key   string `json:"key"`
				Value struct {
					StringValue string `json:"stringValue"`
				} `json:"value"`
			} `json:"attributes"`
		} `json:"resource"`
		ScopeSpans []struct {
			Spans []struct {
				TraceID      string `json:"traceId"`
				SpanID       string `json:"spanId"`
				ParentSpanID string `json:"parentSpanId"`
				Name         string `json:"name"`
				Kind         int    `json:"kind"`
				StartTime    string `json:"startTimeUnixNano"`
				EndTime      string `json:"endTimeUnixNano"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

type otlpMetricDoc struct {
	ResourceMetrics []struct {
		ScopeMetrics []struct {
			Metrics []struct {
				Name string `json:"name"`
				Sum  *struct {
					DataPoints []struct {
						AsInt string `json:"asInt"`
					} `json:"dataPoints"`
				} `json:"sum"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

func (c *collectorStub) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		c.mu.Lock()
		defer c.mu.Unlock()
		switch req.URL.Path {
		case "/v1/traces":
			var doc otlpTraceDoc
			if err := json.NewDecoder(req.Body).Decode(&doc); err != nil {
				t.Errorf("malformed traces payload: %v", err)
			}
			c.traces = append(c.traces, doc)
		case "/v1/metrics":
			var doc otlpMetricDoc
			if err := json.NewDecoder(req.Body).Decode(&doc); err != nil {
				t.Errorf("malformed metrics payload: %v", err)
			}
			c.metrics = append(c.metrics, doc)
		default:
			t.Errorf("unexpected collector path %s", req.URL.Path)
		}
	}
}

// TestOTLPExportEndToEnd runs load against a live fsmserve with
// sampling and export switched on and asserts the collector stub
// receives well-formed trace and metric payloads: service resource,
// hex IDs, the server root span parenting the engine spans, and the
// head-sample budget honored.
func TestOTLPExportEndToEnd(t *testing.T) {
	col := &collectorStub{}
	colSrv := httptest.NewServer(col.handler(t))
	defer colSrv.Close()

	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Head budget of exactly 3 traces; nothing here is slow enough or
	// broken enough to tail-keep, so retention == head admission.
	srv.sampler = trace.NewSampler(trace.SamplerConfig{
		HeadPerSec:    0.0001,
		HeadBurst:     3,
		SlowThreshold: time.Hour,
	})
	srv.exporter, err = otlp.New(otlp.Config{
		Endpoint:    colSrv.URL,
		ServiceName: "fsmserve",
		Snapshot:    srv.metrics.Snapshot,
		Interval:    time.Hour, // flush via Shutdown, deterministically
		BatchSize:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	for i := 0; i < 30; i++ {
		resp, err := http.Post(ts.URL+"/v1/run?machine=sqli", "", strings.NewReader("UNION SELECT "+fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.exporter.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	st := srv.exporter.Stats()
	if st.TracesExported != 3 {
		t.Fatalf("head budget of 3: exported %d traces (%+v)", st.TracesExported, st)
	}
	if ss := srv.sampler.Stats(); ss.Kept != 3 || ss.Dropped != 27 {
		t.Fatalf("sampler decisions: %+v", ss)
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.traces) == 0 {
		t.Fatal("collector received no trace payloads")
	}
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	roots, engineSpans := 0, 0
	for _, doc := range col.traces {
		for _, rs := range doc.ResourceSpans {
			svc := ""
			for _, a := range rs.Resource.Attributes {
				if a.Key == "service.name" {
					svc = a.Value.StringValue
				}
			}
			if svc != "fsmserve" {
				t.Fatalf("resource service.name = %q", svc)
			}
			for _, ss := range rs.ScopeSpans {
				rootByTrace := map[string]string{}
				for _, sp := range ss.Spans {
					if !hex32.MatchString(sp.TraceID) || !hex16.MatchString(sp.SpanID) {
						t.Fatalf("bad span IDs: %+v", sp)
					}
					if sp.StartTime == "" || sp.EndTime == "" {
						t.Fatalf("span missing timestamps: %+v", sp)
					}
					if sp.Name == "POST /v1/run" {
						roots++
						if sp.Kind != 2 {
							t.Fatalf("root span kind %d, want server", sp.Kind)
						}
						rootByTrace[sp.TraceID] = sp.SpanID
					}
				}
				for _, sp := range ss.Spans {
					if sp.Name == "engine.exec" {
						engineSpans++
						if want := rootByTrace[sp.TraceID]; sp.ParentSpanID == "" || want == "" {
							t.Fatalf("engine span unparented: %+v", sp)
						}
					}
				}
			}
		}
	}
	if roots != 3 {
		t.Fatalf("collector saw %d root spans, want 3", roots)
	}
	if engineSpans == 0 {
		t.Fatal("no engine spans exported")
	}
	if len(col.metrics) == 0 {
		t.Fatal("collector received no metric payloads")
	}
	runs := ""
	for _, m := range col.metrics[len(col.metrics)-1].ResourceMetrics[0].ScopeMetrics[0].Metrics {
		if m.Name == "dpfsm.runs" && m.Sum != nil && len(m.Sum.DataPoints) > 0 {
			runs = m.Sum.DataPoints[0].AsInt
		}
	}
	if runs == "" || runs == "0" {
		t.Fatalf("dpfsm.runs sum = %q, want the load to show", runs)
	}
}

// TestMetricsExemplarLinksTrace asserts the acceptance criterion:
// /v1/metrics exposes an exemplar joining an engine_job_ns bucket to
// a trace ID the flight recorder actually retained.
func TestMetricsExemplarLinksTrace(t *testing.T) {
	_, ts := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli&trace=1", "", strings.NewReader("UNION SELECT 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("traced run returned no X-Trace-Id")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	mr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated content type: %q", ct)
	}
	var exemplarLine string
	sc := bufio.NewScanner(mr.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "dpfsm_engine_job_ns_bucket{") && strings.Contains(line, `trace_id="`+traceID+`"`) {
			exemplarLine = line
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if exemplarLine == "" {
		t.Fatal("no engine_job_ns bucket exemplar carries the run's trace ID")
	}
	exRe := regexp.MustCompile(`^dpfsm_engine_job_ns_bucket\{le="[^"]+"\} \d+ # \{trace_id="[0-9a-f]{32}"\} \d+ \d+\.\d{9}$`)
	if !exRe.MatchString(exemplarLine) {
		t.Fatalf("exemplar line not OpenMetrics-shaped: %q", exemplarLine)
	}

	// The linked trace must be retrievable — an exemplar pointing at an
	// evicted trace is a dead link.
	tr, err := http.Get(ts.URL + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace %s not retained: status %d", traceID, tr.StatusCode)
	}
}

// syncBuffer serializes writes from the handler goroutines against
// the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogCarriesTraceID(t *testing.T) {
	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	logBuf := &syncBuffer{}
	srv.log = slog.New(slog.NewJSONHandler(logBuf, nil))
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli&trace=1", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	r2, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	var tracedLine, untracedLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "request" {
			continue
		}
		switch rec["route"] {
		case "/v1/run":
			tracedLine = rec
		case "/v1/status":
			untracedLine = rec
		}
	}
	if tracedLine == nil || untracedLine == nil {
		t.Fatalf("missing access-log lines: traced=%v untraced=%v", tracedLine, untracedLine)
	}
	if got := tracedLine["trace_id"]; got != traceID {
		t.Errorf("traced access log trace_id=%v, want %q", got, traceID)
	}
	if got := untracedLine["trace_id"]; got != "" {
		t.Errorf("untraced access log trace_id=%v, want empty", got)
	}
}

func TestStatusReportsObservability(t *testing.T) {
	col := &collectorStub{}
	colSrv := httptest.NewServer(col.handler(t))
	defer colSrv.Close()

	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.sampler = trace.NewSampler(trace.SamplerConfig{})
	srv.exporter, err = otlp.New(otlp.Config{Endpoint: colSrv.URL, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.exporter.Shutdown(context.Background())
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r2, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var st serverapi.Status
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Observability == nil || st.Observability.Sampler == nil || st.Observability.Exporter == nil {
		t.Fatalf("observability block missing: %+v", st.Observability)
	}
	if st.Observability.Sampler.Kept == 0 {
		t.Errorf("sampler saw no decisions: %+v", st.Observability.Sampler)
	}
	if st.Observability.Exporter.Endpoint != colSrv.URL {
		t.Errorf("exporter endpoint: %+v", st.Observability.Exporter)
	}
}
