package main

import (
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"dpfsm/internal/serverapi"
	"dpfsm/internal/telemetry"
)

// GET /v1/status: the one-page live view of the server. Everything in
// it exists elsewhere — /v1/snapshot has the raw counters, /v1/metrics
// the scrapeable series, the plan-cache dir the persisted profiles —
// but an operator answering "is this server healthy and which machine
// is expensive" should not have to join three surfaces by hand.

// buildVersion resolves the main module's version from the embedded
// build info ("(devel)" on untagged builds, "" when no build info is
// compiled in, e.g. some test binaries).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		return bi.Main.Version
	}
	return ""
}

func (s *server) status() serverapi.Status {
	snap := s.metrics.Snapshot()
	st := serverapi.Status{
		Service:     "fsmserve",
		GoVersion:   runtime.Version(),
		Build:       buildVersion(),
		PID:         os.Getpid(),
		StartUnixNs: s.started.UnixNano(),
		UptimeNs:    int64(time.Since(s.started)),

		Workers:        s.engine.Workers(),
		Procs:          s.engine.Procs(),
		LargeInput:     s.engine.LargeInput(),
		QueueDepth:     s.engine.QueueDepth(),
		QueueCap:       s.engine.QueueCap(),
		QueueHighWater: snap.EngineQueueHighWater,
		ShedTotal:      snap.EngineQueueRejects,

		PlanCacheHits:    snap.PlanCacheHits,
		PlanCacheMisses:  snap.PlanCacheMisses,
		PlanCacheHitRate: snap.PlanCacheHitRate,

		Profiles: s.profiles.Profiles(),
		Runtime:  telemetry.ReadRuntime(),
	}
	st.Machines = len(st.Profiles)
	// The adaptive layer's current per-machine decisions, in the
	// registry's name order sorted for stable output.
	s.mu.RLock()
	names := append([]string(nil), s.order...)
	s.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if m := s.engine.Machine(name); m != nil {
			st.Selections = append(st.Selections, machineSelection(name, m))
		}
	}
	// Shed rate over everything offered: executed + refused.
	if offered := snap.EngineJobs + snap.EngineQueueRejects; offered > 0 {
		st.ShedRate = float64(snap.EngineQueueRejects) / float64(offered)
	}
	// The distributed-execution view, present only when this node has
	// peers of its own (its peer-serving side is always on regardless).
	if co := s.engine.Cluster(); co != nil {
		st.Cluster = &serverapi.ClusterStatus{
			Peers:      co.Health(),
			ChunkBytes: co.ChunkBytes(),
			MinBytes:   s.engine.ClusterMinBytes(),
			Served:     s.peer.Stats(),
			Jobs:       snap.EngineCluster,
			Degraded:   snap.ClusterDegraded,
		}
	}
	// The export half of the observability stack, present only when
	// sampling or OTLP export is switched on.
	if s.sampler != nil || s.exporter != nil {
		st.Observability = &serverapi.Observability{}
		if s.sampler != nil {
			ss := s.sampler.Stats()
			st.Observability.Sampler = &ss
		}
		if s.exporter != nil {
			es := s.exporter.Stats()
			st.Observability.Exporter = &es
		}
	}
	return st
}

func (s *server) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/status")
		return
	}
	writeJSON(w, s.status())
}

// saveProfilesLoop persists the perf profiles every interval until ctx
// ends — the crash-resilience half of the persistence story (clean
// shutdowns flush via Close). No-op without a plan directory.
func (s *server) saveProfilesLoop(done <-chan struct{}, interval time.Duration) {
	if s.profiles.Dir() == "" || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if err := s.profiles.SaveAll(); err != nil {
				s.log.Warn("persisting perf profiles", "err", err)
			}
		}
	}
}
