package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/serverapi"
)

// tracedServer builds a server with explicit procs/maxBody for the
// tracing tests (testServer pins procs=1, which never exercises the
// multicore lane).
func tracedServer(t *testing.T, procs int, maxBody int64) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(nil, core.Auto, procs, maxBody, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, url string, body []byte, header map[string]string) (*http.Response, serverapi.RunResult) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res serverapi.RunResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return resp, res
}

// TestRunTraceExplainSingleLane checks the ?trace=1 contract on the
// single-core lane, including the acceptance criterion that the explain
// block's numbers equal the telemetry deltas of the same run.
func TestRunTraceExplainSingleLane(t *testing.T) {
	srv, ts := tracedServer(t, 1, 1<<20)
	payload := bytes.Repeat([]byte("GET /cgi-bin/x.pl HTTP/1.1\n"), 2000)

	// Fresh server: the first snapshot is all zeros, so the post-run
	// snapshot IS the delta of this one traced run.
	resp, res := postRun(t, ts.URL+"/v1/run?machine=cgi&trace=1", payload, nil)
	snap := srv.metrics.Snapshot()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	hdr := resp.Header.Get("X-Trace-Id")
	if hdr == "" || hdr != res.TraceID {
		t.Fatalf("X-Trace-Id %q, body trace_id %q", hdr, res.TraceID)
	}
	if res.Explain == nil {
		t.Fatal("?trace=1 returned no explain block")
	}
	ex := res.Explain
	if ex.Lane != "single" || !strings.Contains(ex.LaneReason, "multicore lane disabled") {
		t.Errorf("lane %q reason %q", ex.Lane, ex.LaneReason)
	}
	if ex.Strategy == "" {
		t.Error("explain has no strategy")
	}
	if ex.ChunkCount != 1 || len(ex.Chunks) != 1 {
		t.Fatalf("single lane: chunks=%d profiles=%d", ex.ChunkCount, len(ex.Chunks))
	}
	c := ex.Chunks[0]
	if c.Bytes != int64(len(payload)) {
		t.Errorf("chunk bytes %d, want %d", c.Bytes, len(payload))
	}
	if c.DurationNs <= 0 {
		t.Error("chunk has no duration")
	}
	// The explain numbers are the telemetry numbers, exactly.
	if c.Gathers != snap.Gathers || c.Shuffles != snap.Shuffles {
		t.Errorf("explain gathers/shuffles %d/%d, telemetry %d/%d",
			c.Gathers, c.Shuffles, snap.Gathers, snap.Shuffles)
	}
	if c.FactorCalls != snap.FactorCalls || c.FactorWins != snap.FactorWins {
		t.Errorf("explain factor %d/%d, telemetry %d/%d",
			c.FactorCalls, c.FactorWins, snap.FactorCalls, snap.FactorWins)
	}
	if int64(c.WidthStart) != snap.ActiveHighWater {
		t.Errorf("explain width_start %d, telemetry high water %d", c.WidthStart, snap.ActiveHighWater)
	}
}

// TestRunTraceExplainMulticore is the acceptance-criteria check on the
// multicore lane: per-chunk convergence widths and shuffle counts must
// be consistent with the telemetry snapshot deltas for the same run.
func TestRunTraceExplainMulticore(t *testing.T) {
	srv, ts := tracedServer(t, 4, 64<<20)
	payload := bytes.Repeat([]byte("id=1 UNION ALL types of text here "), 70_000) // ~2.3 MiB

	before := srv.metrics.Snapshot()
	resp, res := postRun(t, ts.URL+"/v1/run?machine=sqli&trace=1", payload, nil)
	after := srv.metrics.Snapshot()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !res.Multicore {
		t.Fatalf("2.3 MiB input did not take the multicore lane: %+v", res)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("no explain block")
	}
	// With a profile store attached the first large jobs ride the
	// adaptive selector's cold-start default; either phrasing must name
	// why the multicore lane was taken.
	if ex.Lane != "multicore" ||
		(!strings.Contains(ex.LaneReason, "large-input threshold") &&
			!strings.Contains(ex.LaneReason, "multicore heuristic")) {
		t.Errorf("lane %q reason %q", ex.Lane, ex.LaneReason)
	}
	if ex.ChunkCount < 2 || len(ex.Chunks) != ex.ChunkCount {
		t.Fatalf("chunks=%d profiles=%d", ex.ChunkCount, len(ex.Chunks))
	}

	var gathers, shuffles, calls, wins, sumBytes int64
	widthHigh := 0
	for i, c := range ex.Chunks {
		if c.Index != i {
			t.Errorf("chunk %d has index %d (not sorted)", i, c.Index)
		}
		gathers += c.Gathers
		shuffles += c.Shuffles
		calls += c.FactorCalls
		wins += c.FactorWins
		sumBytes += c.Bytes
		if c.WidthStart > widthHigh {
			widthHigh = c.WidthStart
		}
	}
	if sumBytes != int64(len(payload)) {
		t.Errorf("chunk bytes sum %d, want %d", sumBytes, len(payload))
	}
	if d := after.Gathers - before.Gathers; gathers != d {
		t.Errorf("explain gathers sum %d, telemetry delta %d", gathers, d)
	}
	if d := after.Shuffles - before.Shuffles; shuffles != d {
		t.Errorf("explain shuffles sum %d, telemetry delta %d", shuffles, d)
	}
	if d := after.FactorCalls - before.FactorCalls; calls != d {
		t.Errorf("explain factor calls sum %d, telemetry delta %d", calls, d)
	}
	if d := after.FactorWins - before.FactorWins; wins != d {
		t.Errorf("explain factor wins sum %d, telemetry delta %d", wins, d)
	}
	if int64(widthHigh) != after.ActiveHighWater {
		t.Errorf("explain max width_start %d, telemetry high water %d", widthHigh, after.ActiveHighWater)
	}

	// The trace landed in the flight recorder and is served back.
	rt, err := http.Get(ts.URL + "/v1/traces/" + res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Body.Close()
	if rt.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id} status %d", rt.StatusCode)
	}
	var doc struct {
		TraceID string          `json:"trace_id"`
		Spans   json.RawMessage `json:"spans"`
	}
	if err := json.NewDecoder(rt.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != res.TraceID {
		t.Errorf("trace doc id %q, want %q", doc.TraceID, res.TraceID)
	}
	for _, name := range []string{engine.SpanExec, core.SpanMulticore, core.SpanPhase1Chunk} {
		if !bytes.Contains(doc.Spans, []byte(name)) {
			t.Errorf("span tree missing %q", name)
		}
	}
}

// TestTraceparentPropagation: an inbound W3C traceparent header traces
// the request under the caller's trace ID without needing ?trace=1.
func TestTraceparentPropagation(t *testing.T) {
	srv, ts := tracedServer(t, 1, 1<<20)
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + wantID + "-00f067aa0ba902b7-01"

	resp, res := postRun(t, ts.URL+"/v1/run?machine=sqli", []byte("hello"),
		map[string]string{"traceparent": parent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.TraceID != wantID {
		t.Errorf("trace_id %q, want inbound %q", res.TraceID, wantID)
	}
	if resp.Header.Get("X-Trace-Id") != wantID {
		t.Errorf("X-Trace-Id %q", resp.Header.Get("X-Trace-Id"))
	}
	if res.Explain != nil {
		t.Error("explain present without ?trace=1")
	}
	if srv.recorder.Find(wantID) == nil {
		t.Error("inbound-traced request not in the flight recorder")
	}
}

func TestUntracedRunHasNoTraceArtifacts(t *testing.T) {
	srv, ts := tracedServer(t, 1, 1<<20)
	resp, res := postRun(t, ts.URL+"/v1/run?machine=sqli", []byte("plain"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") != "" || res.TraceID != "" || res.Explain != nil {
		t.Errorf("untraced run leaked trace artifacts: hdr=%q res=%+v",
			resp.Header.Get("X-Trace-Id"), res)
	}
	if srv.recorder.Total() != 0 {
		t.Errorf("recorder holds %d traces after an untraced run", srv.recorder.Total())
	}
}

// TestTracesListAndFilters drives GET /v1/traces with the machine and
// min_ms filters.
func TestTracesListAndFilters(t *testing.T) {
	_, ts := tracedServer(t, 1, 1<<20)
	for _, machine := range []string{"sqli", "cgi"} {
		resp, _ := postRun(t, ts.URL+"/v1/run?trace=1&machine="+machine, []byte("some input"), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding run status %d", resp.StatusCode)
		}
	}

	list := func(q string) []serverapi.TraceInfo {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/traces%s status %d", q, resp.StatusCode)
		}
		var out []serverapi.TraceInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := list("")
	if len(all) != 2 {
		t.Fatalf("%d traces listed, want 2", len(all))
	}
	// Newest first: the cgi run came second.
	if all[0].Machine != "cgi" || all[1].Machine != "sqli" {
		t.Errorf("order/machines: %+v", all)
	}
	for _, info := range all {
		if info.TraceID == "" || info.Spans == 0 || info.DurationNs <= 0 || info.StartUnixNs == 0 {
			t.Errorf("thin trace info: %+v", info)
		}
		if !strings.Contains(info.Name, "/run") {
			t.Errorf("trace name %q", info.Name)
		}
	}

	if got := list("?machine=sqli"); len(got) != 1 || got[0].Machine != "sqli" {
		t.Errorf("machine filter: %+v", got)
	}
	// Millisecond-scale runs all sit far below a 10-minute floor.
	if got := list("?min_ms=600000"); len(got) != 0 {
		t.Errorf("min_ms filter kept %+v", got)
	}
	if resp, _ := http.Get(ts.URL + "/v1/traces?min_ms=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ms status %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/traces/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id status %d", resp.StatusCode)
	}
}

// TestBatchTraced: one ?trace=1 batch produces one trace holding every
// job's queue and exec spans.
func TestBatchTraced(t *testing.T) {
	srv, ts := tracedServer(t, 1, 1<<20)
	lines := strings.Join([]string{
		`{"machine":"sqli","input":"id=1 UNION  SELECT x"}`,
		`{"machine":"traversal","input":"GET ../../etc/passwd"}`,
		`{"input":"clean"}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/batch?trace=1", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("traced batch has no X-Trace-Id")
	}
	// Drain the stream so the handler (and the recorder write) finish.
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)

	tr := srv.recorder.Find(id)
	if tr == nil {
		t.Fatal("batch trace not recorded")
	}
	var queued, execed int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case engine.SpanQueue:
			queued++
		case engine.SpanExec:
			execed++
		}
	}
	if queued != 3 || execed != 3 {
		t.Errorf("queue spans %d, exec spans %d, want 3 each", queued, execed)
	}
}

// TestAccessLog checks the one-line-per-request contract and its
// trace-ID correlation.
func TestAccessLog(t *testing.T) {
	srv, ts := tracedServer(t, 1, 1<<20)
	var buf bytes.Buffer
	srv.log = slog.New(slog.NewJSONHandler(&buf, nil))

	resp, res := postRun(t, ts.URL+"/v1/run?machine=sqli&trace=1", []byte("x"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entry struct {
		Msg        string  `json:"msg"`
		Method     string  `json:"method"`
		Route      string  `json:"route"`
		Status     int     `json:"status"`
		DurationMs float64 `json:"duration_ms"`
		TraceID    string  `json:"trace_id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %v (%q)", err, buf.String())
	}
	if entry.Msg != "request" || entry.Method != "POST" || entry.Route != "/v1/run" {
		t.Errorf("log entry %+v", entry)
	}
	if entry.Status != http.StatusOK || entry.DurationMs <= 0 {
		t.Errorf("log accounting %+v", entry)
	}
	if entry.TraceID != res.TraceID {
		t.Errorf("log trace_id %q, result %q", entry.TraceID, res.TraceID)
	}

	// Untraced requests still log, with an empty trace ID.
	buf.Reset()
	if _, err := http.Get(ts.URL + "/v1/machines"); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("machines access log: %v (%q)", err, buf.String())
	}
	if entry.Route != "/v1/machines" || entry.TraceID != "" {
		t.Errorf("untraced log entry %+v", entry)
	}
}
