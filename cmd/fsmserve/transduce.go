package main

// POST /v1/transduce: tokenize-as-a-service. The machine must carry an
// output table (registered as a transducer); the response streams
// NDJSON — a header line, one line per emitted span in input order,
// and a trailing summary — so a client can start consuming token spans
// before the tail of a large input has been replayed. Dispatch,
// tracing, and metering match /v1/run: the engine picks the lane
// (single/multicore/speculative, honoring ?strategy= overrides), and
// every lane produces the exact sequential span list.

import (
	"fmt"
	"io"
	"net/http"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/fsm"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/trace"
	"dpfsm/internal/xmltok"
	"encoding/json"
)

// spanFlushEvery bounds how many span lines buffer between flushes:
// small enough that a client sees steady progress on span-dense
// inputs, large enough that flushing is not per-line.
const spanFlushEvery = 256

// registerBuiltinTransducers installs the compiled-in tokenizers as
// transducer machines. A name collision (a patterns file claiming
// "htmltok") leaves the pattern machine in place — explicit
// configuration outranks built-ins.
func (s *server) registerBuiltinTransducers() {
	builtins := []struct {
		name, desc string
		t          *fsm.Transducer
	}{
		{"htmltok", "(builtin HTML tokenizer)", htmltok.NewTransducer()},
		{"xmltok", "(builtin XML tokenizer)", xmltok.NewTransducer()},
	}
	for _, b := range builtins {
		if s.engine.Machine(b.name) != nil {
			continue
		}
		if _, err := s.engine.RegisterTransducer(b.name, b.t, core.WithStrategy(s.strategy)); err != nil {
			s.log.Warn("registering builtin transducer", "machine", b.name, "err", err)
			continue
		}
		s.mu.Lock()
		s.meta[b.name] = machineMeta{pattern: b.desc, source: "builtin"}
		s.order = append(s.order, b.name)
		s.mu.Unlock()
	}
}

// handleTransduce is POST /v1/transduce?machine=NAME[&start=Q][&strategy=S][&trace=1].
func (s *server) handleTransduce(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST an input body to /v1/transduce")
		return
	}
	name, m, ok := s.resolveMachine(w, req)
	if !ok {
		return
	}
	if m.Transducer() == nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("machine %q is an acceptor (no output table); transduce needs a moore/mealy machine", name))
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	job := engine.Job{Machine: name, Input: input}
	if qs := req.URL.Query().Get("start"); qs != "" {
		var q int
		if _, err := fmt.Sscanf(qs, "%d", &q); err != nil || q < 0 || !m.DFA().ValidState(fsm.State(q)) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad start state %q", qs))
			return
		}
		job.Start, job.HasStart = fsm.State(q), true
	}
	if qs := req.URL.Query().Get("strategy"); qs != "" {
		st, err := core.ParseStrategy(qs)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad strategy %q: %v", qs, err))
			return
		}
		job.Strategy = st
	}

	// The request context rides down to the chunk loops, as on /v1/run.
	res := s.engine.Transduce(req.Context(), job)
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(serverapi.TransduceHeader{Machine: name, Kind: m.Kind().String(), Bytes: res.Bytes})
	for i, sp := range res.Spans {
		_ = enc.Encode(serverapi.TransduceSpan{Start: sp.Start, End: sp.End, Out: int(sp.Out)})
		if flusher != nil && (i+1)%spanFlushEvery == 0 {
			flusher.Flush()
		}
	}
	summary := serverapi.TransduceSummary{
		Spans:           len(res.Spans),
		OutputBytes:     res.OutputBytes,
		Bytes:           res.Bytes,
		Final:           res.Final,
		Accepts:         res.Accepts,
		Lane:            res.Lane,
		Multicore:       res.Multicore,
		Strategy:        res.Strategy,
		SelectionReason: res.Reason,
		DurationNs:      int64(res.Duration),
	}
	if res.Duration > 0 {
		summary.MBPerS = float64(res.Bytes) / res.Duration.Seconds() / 1e6
	}
	if tr := trace.FromContext(req.Context()); tr != nil {
		summary.TraceID = tr.ID()
	}
	_ = enc.Encode(serverapi.TransduceTrailer{Summary: summary})
	if flusher != nil {
		flusher.Flush()
	}
}
