package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/serverapi"
)

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// registryNames returns the sorted names currently listed by
// GET /v1/machines.
func registryNames(t *testing.T, ts *httptest.Server) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []serverapi.MachineInfo
	decodeInto(t, resp, &infos)
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	sort.Strings(names)
	return names
}

func TestRegisterEndpoint(t *testing.T) {
	_, ts := testServer(t)

	resp := postJSON(t, ts.URL+"/v1/machines", serverapi.RegisterRequest{
		Name: "exfil", Pattern: `SELECT\s+.*\s+INTO\s+OUTFILE`,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var rr serverapi.RegisterResult
	decodeInto(t, resp, &rr)
	if rr.Machine.Name != "exfil" || rr.Machine.Source != "api" {
		t.Fatalf("register result machine: %+v", rr.Machine)
	}
	if rr.Machine.Fingerprint == "" || rr.CompileNs <= 0 {
		t.Fatalf("register result missing compile stats: %+v", rr)
	}
	if rr.PlanCached {
		t.Fatalf("first registration of a new machine reported a cached plan")
	}

	// The machine serves immediately.
	run, err := http.Post(ts.URL+"/v1/run?machine=exfil", "",
		strings.NewReader("SELECT creds  INTO OUTFILE '/tmp/x'"))
	if err != nil {
		t.Fatal(err)
	}
	var res serverapi.RunResult
	decodeInto(t, run, &res)
	if !res.Accepts {
		t.Fatalf("registered machine should accept: %+v", res)
	}

	// Same name again: conflict, registry unchanged.
	resp = postJSON(t, ts.URL+"/v1/machines", serverapi.RegisterRequest{Name: "exfil", Pattern: `x`})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed requests.
	for _, bad := range []serverapi.RegisterRequest{
		{Name: "", Pattern: "x"},
		{Name: "nopat", Pattern: ""},
		{Name: "badre", Pattern: "(unclosed"},
	} {
		resp := postJSON(t, ts.URL+"/v1/machines", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register %+v: status %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
	raw, err := http.Post(ts.URL+"/v1/machines", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable register body: status %d", raw.StatusCode)
	}
	raw.Body.Close()

	// GET one; the listing includes it alongside the defaults.
	var info serverapi.MachineInfo
	one, err := http.Get(ts.URL + "/v1/machines/exfil")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, one, &info)
	if info.Pattern == "" || info.Fingerprint != rr.Machine.Fingerprint {
		t.Fatalf("GET one: %+v", info)
	}
	if names := registryNames(t, ts); !slices.Contains(names, "exfil") {
		t.Fatalf("listing missing exfil: %v", names)
	}

	// DELETE unregisters; a second DELETE and later runs 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/machines/exfil", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", del.StatusCode)
	}
	del2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del2.Body.Close()
	if del2.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d, want 404", del2.StatusCode)
	}
	gone, err := http.Post(ts.URL+"/v1/run?machine=exfil", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("run after delete status %d, want 404", gone.StatusCode)
	}
}

// TestPlanCacheDirRoundTrip: a second server pointed at the same
// -plan-cache-dir reloads every plan instead of compiling, and the
// reloaded machines produce the same results.
func TestPlanCacheDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	patterns := []string{`sqli=UNION\s+SELECT`, `traversal=\.\./\.\./`}
	inputs := map[string]string{
		"sqli":      "id=0 UNION  SELECT *",
		"traversal": "GET ../../etc/passwd",
	}

	srv1, err := newServer(patterns, core.Auto, 1, 1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for name, in := range inputs {
		m := srv1.engine.Machine(name)
		if m == nil {
			t.Fatalf("machine %q missing", name)
		}
		if m.PlanCached() {
			t.Fatalf("cold start claimed a cached plan for %q", name)
		}
		want[name] = m.Runner().Accepts([]byte(in))
	}
	srv1.Close()
	files, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(files) != len(patterns) {
		t.Fatalf("plan dir holds %d files (%v), want %d", len(files), err, len(patterns))
	}

	srv2, err := newServer(patterns, core.Auto, 1, 1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for name, in := range inputs {
		m := srv2.engine.Machine(name)
		if !m.PlanCached() {
			t.Errorf("restart did not reuse the persisted plan for %q", name)
		}
		if got := m.Runner().Accepts([]byte(in)); got != want[name] {
			t.Errorf("%q: reloaded plan accepts=%v, built plan accepts=%v", name, got, want[name])
		}
	}

	// A corrupt plan file is ignored, not fatal: the machine compiles.
	if err := os.WriteFile(files[0], []byte("garbage, not a plan"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv3, err := newServer(patterns, core.Auto, 1, 1<<20, dir)
	if err != nil {
		t.Fatalf("corrupt plan file broke startup: %v", err)
	}
	defer srv3.Close()
	for name, in := range inputs {
		if got := srv3.engine.Machine(name).Runner().Accepts([]byte(in)); got != want[name] {
			t.Errorf("%q after corruption: accepts=%v want %v", name, got, want[name])
		}
	}
}

func writePatterns(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReloadPatterns drives the SIGHUP reconciliation directly:
// added/changed/removed file machines converge on the file, API
// machines survive, and a bad file aborts with no changes.
func TestReloadPatterns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	writePatterns(t, path, `alpha=UNION`, `beta=xyz+`)
	specs, err := loadPatternsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(specs, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	// One API-registered machine that reloads must never touch.
	resp := postJSON(t, ts.URL+"/v1/machines", serverapi.RegisterRequest{Name: "api-held", Pattern: `zz`})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("api register: %d", resp.StatusCode)
	}

	// beta changes, gamma appears, alpha disappears.
	writePatterns(t, path, `beta=xy`, `gamma=\d\d\d`)
	if err := srv.reloadPatterns(path); err != nil {
		t.Fatalf("reload: %v", err)
	}
	got := registryNames(t, ts)
	want := []string{"api-held", "beta", "gamma"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("after reload: %v, want %v", got, want)
	}
	if !srv.engine.Machine("beta").Runner().Accepts([]byte("--xy--")) {
		t.Error("beta still runs its pre-reload pattern")
	}

	// A file claiming an API-held name: reload succeeds but the API
	// machine keeps its pattern.
	writePatterns(t, path, `beta=xy`, `gamma=\d\d\d`, `api-held=www`)
	if err := srv.reloadPatterns(path); err != nil {
		t.Fatalf("reload with api collision: %v", err)
	}
	if !srv.engine.Machine("api-held").Runner().Accepts([]byte("a zz b")) {
		t.Error("reload overwrote an API-registered machine")
	}

	// Bad regex in the file: no mutation at all.
	writePatterns(t, path, `beta=(((`, `delta=ok`)
	if err := srv.reloadPatterns(path); err == nil {
		t.Fatal("reload accepted a file with a bad regex")
	}
	if after := registryNames(t, ts); strings.Join(after, ",") != strings.Join(want, ",") {
		t.Fatalf("failed reload mutated the registry: %v", after)
	}

	// Duplicate names in the file: rejected with both line numbers.
	writePatterns(t, path, `beta=xy`, `# comment`, `beta=other`)
	err = srv.reloadPatterns(path)
	if err == nil || !strings.Contains(err.Error(), "duplicate machine name") {
		t.Fatalf("duplicate names: got %v", err)
	}
	if !strings.Contains(err.Error(), ":3:") || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("duplicate error lacks line numbers: %v", err)
	}
}

// machineInfos fetches the full /v1/machines listing keyed by name,
// so tests can compare fingerprints — not just names — across a
// failed reload.
func machineInfos(t *testing.T, ts *httptest.Server) map[string]serverapi.MachineInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []serverapi.MachineInfo
	decodeInto(t, resp, &infos)
	out := make(map[string]serverapi.MachineInfo, len(infos))
	for _, in := range infos {
		out[in.Name] = in
	}
	return out
}

// TestReloadFailurePathsKeepRegistry is the SIGHUP regression suite
// for mid-reload failures: the patterns file vanishing or turning
// syntactically invalid between the signal and the read must leave
// the previous registry fully intact — same names, same fingerprints,
// still serving.
func TestReloadFailurePathsKeepRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	writePatterns(t, path, `alpha=UNION`, `beta=xyz+`)
	specs, err := loadPatternsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(specs, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	before := machineInfos(t, ts)
	if len(before) != 2 {
		t.Fatalf("seed registry: %v", before)
	}
	assertIntact := func(scenario string) {
		t.Helper()
		after := machineInfos(t, ts)
		if len(after) != len(before) {
			t.Fatalf("%s: registry size changed: %v", scenario, after)
		}
		for name, b := range before {
			a, ok := after[name]
			if !ok {
				t.Fatalf("%s: machine %q gone after failed reload", scenario, name)
			}
			if a.Fingerprint != b.Fingerprint || a.Pattern != b.Pattern {
				t.Fatalf("%s: machine %q mutated: %+v -> %+v", scenario, name, b, a)
			}
		}
		// The survivors still serve.
		resp, err := http.Post(ts.URL+"/v1/run?machine=alpha", "", strings.NewReader("a UNION b"))
		if err != nil {
			t.Fatal(err)
		}
		var res serverapi.RunResult
		decodeInto(t, resp, &res)
		if !res.Accepts {
			t.Fatalf("%s: alpha stopped matching after failed reload", scenario)
		}
	}

	// Scenario 1: the file is deleted before the signal lands.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := srv.reloadPatterns(path); err == nil {
		t.Fatal("reload of a deleted file succeeded")
	} else if !os.IsNotExist(err) {
		t.Fatalf("deleted file: err = %v, want not-exist", err)
	}
	assertIntact("deleted file")

	// Scenario 2: a syntactically invalid line (no NAME=REGEX shape).
	writePatterns(t, path, `alpha=UNION`, `this line has no equals sign`)
	if err := srv.reloadPatterns(path); err == nil ||
		!strings.Contains(err.Error(), "want NAME=REGEX") {
		t.Fatalf("invalid line: err = %v, want NAME=REGEX complaint", err)
	}
	assertIntact("invalid line")

	// Scenario 3: an empty machine name is equally malformed.
	writePatterns(t, path, `=UNION`)
	if err := srv.reloadPatterns(path); err == nil ||
		!strings.Contains(err.Error(), "want NAME=REGEX") {
		t.Fatalf("empty name: err = %v, want NAME=REGEX complaint", err)
	}
	assertIntact("empty name")

	// A good file still reconciles after the string of failures.
	writePatterns(t, path, `alpha=UNION`, `beta=xyz+`, `gamma=\d+`)
	if err := srv.reloadPatterns(path); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	if got := registryNames(t, ts); !slices.Equal(got, []string{"alpha", "beta", "gamma"}) {
		t.Fatalf("after recovery: %v", got)
	}
}

// TestReloadSweepsDefaults: a server started on the built-in rule set
// converges fully onto the file at first reload.
func TestReloadSweepsDefaults(t *testing.T) {
	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	path := filepath.Join(t.TempDir(), "rules.txt")
	writePatterns(t, path, `only=abc`)
	if err := srv.reloadPatterns(path); err != nil {
		t.Fatal(err)
	}
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if len(srv.order) != 1 || srv.order[0] != "only" {
		t.Fatalf("registry after sweep: %v", srv.order)
	}
}
