package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/serverapi"
)

// Two real fsmserve nodes over HTTP: A coordinates, B serves chunks.
// Both register the default pattern set, so their fingerprints agree
// and B can resolve shipped plans against its own registry.
func clusterPair(t *testing.T) (*server, *httptest.Server, *server, *httptest.Server) {
	t.Helper()
	srvA, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvA.Close)
	tsA := httptest.NewServer(srvA.mux())
	t.Cleanup(tsA.Close)

	srvB, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvB.Close)
	tsB := httptest.NewServer(srvB.mux())
	t.Cleanup(tsB.Close)

	if err := srvA.enableCluster([]string{tsB.URL}, 512, 2048); err != nil {
		t.Fatal(err)
	}
	return srvA, tsA, srvB, tsB
}

// clusterInput is large enough to clear the 2048-byte cluster
// threshold and contains one embedded match.
func clusterInput() []byte {
	var b bytes.Buffer
	for b.Len() < 8192 {
		b.WriteString("GET /index.html?q=hello normal traffic padding ")
	}
	b.WriteString("id=1 UNION  SELECT password FROM users")
	for b.Len() < 16384 {
		b.WriteString(" trailing benign bytes to spread across chunks ")
	}
	return b.Bytes()
}

func TestServerClusterLaneOverHTTP(t *testing.T) {
	srvA, tsA, _, tsB := clusterPair(t)
	input := clusterInput()
	d := srvA.engine.Machine("sqli").DFA()
	wantAccepts := d.Accepting(d.Run(input, d.Start()))

	resp, err := http.Post(tsA.URL+"/v1/run?machine=sqli", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res serverapi.RunResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Lane != engine.LaneCluster {
		t.Fatalf("lane %q (%s), want cluster", res.Lane, res.SelectionReason)
	}
	if res.Accepts != wantAccepts {
		t.Fatalf("cluster run accepts=%v, oracle %v", res.Accepts, wantAccepts)
	}
	if res.Degraded {
		t.Fatalf("degraded with a healthy peer: %+v", res)
	}

	// The coordinator's side of the story on /v1/status: one cluster
	// job, a healthy peer, a shipped plan.
	var st serverapi.Status
	sresp, err := http.Get(tsA.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("/v1/status has no cluster section on a coordinating node")
	}
	if st.Cluster.Jobs == 0 || st.Cluster.MinBytes != 2048 || st.Cluster.ChunkBytes != 512 {
		t.Fatalf("cluster status %+v", st.Cluster)
	}
	if len(st.Cluster.Peers) != 1 || st.Cluster.Peers[0].State != "closed" || st.Cluster.Peers[0].Tasks == 0 {
		t.Fatalf("peer health %+v", st.Cluster.Peers)
	}
	if st.Cluster.Peers[0].Peer != tsB.URL {
		t.Fatalf("peer %q, want %q", st.Cluster.Peers[0].Peer, tsB.URL)
	}
}

// The peer-serving half is always mounted: B exposes the cluster
// endpoints even though it has no peers of its own, and its status
// carries no cluster section.
func TestServerPeerEndpointsAlwaysMounted(t *testing.T) {
	_, _, srvB, tsB := clusterPair(t)

	resp, err := http.Post(tsB.URL+"/v1/cluster/exec", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A garbage task is a client error, not a routing miss.
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage exec task: status %d, want 400", resp.StatusCode)
	}

	var st serverapi.Status
	sresp, err := http.Get(tsB.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster != nil {
		t.Fatalf("peer-only node reports a cluster section: %+v", st.Cluster)
	}
	if srvB.peer == nil {
		t.Fatal("peer side not constructed")
	}
}

// Kill the only peer mid-service: the cluster lane degrades to local
// re-execution, the answer stays exact, and the response says so.
func TestServerClusterDegradesWhenPeerDies(t *testing.T) {
	srvA, tsA, _, tsB := clusterPair(t)
	input := clusterInput()
	d := srvA.engine.Machine("sqli").DFA()
	wantAccepts := d.Accepting(d.Run(input, d.Start()))

	tsB.Close() // peer gone before the first fan-out

	resp, err := http.Post(tsA.URL+"/v1/run?machine=sqli", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: degradation must not surface as an error", resp.StatusCode)
	}
	var res serverapi.RunResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Lane != engine.LaneCluster || !res.Degraded {
		t.Fatalf("dead peer: lane %q degraded %v, want degraded cluster run", res.Lane, res.Degraded)
	}
	if res.Accepts != wantAccepts {
		t.Fatalf("degraded run accepts=%v, oracle %v", res.Accepts, wantAccepts)
	}
	if srvA.metrics.ClusterDegraded.Load() == 0 || srvA.metrics.ClusterLocalFallbacks.Load() == 0 {
		t.Fatal("telemetry missed the degradation")
	}

	var st serverapi.Status
	sresp, err := http.Get(tsA.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Degraded == 0 {
		t.Fatalf("status after degradation: %+v", st.Cluster)
	}
}
