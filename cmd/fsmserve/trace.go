package main

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/trace"
)

// Request-scoped tracing for the HTTP surface. A request is traced when
// it asks for it (?trace=1) or arrives carrying a W3C traceparent
// header (so fsmserve slots into an existing distributed trace); the
// trace rides the request context down through the engine and the core
// chunk loops, is finished when the handler returns, and lands in the
// flight recorder for GET /v1/traces{,/{id}}. Untraced requests pay
// nothing beyond one context Value miss per instrumented boundary.

// wantsTrace reports whether the request opted into tracing.
func wantsTrace(req *http.Request) bool {
	return req.URL.Query().Get("trace") != "" || req.Header.Get("traceparent") != ""
}

// statusWriter captures the response status for the access log while
// forwarding Flush, which the NDJSON batch streaming depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a route handler with the access log, the SLO
// tracker, and — when traceable — request-scoped tracing: it opens
// (or continues) the trace, exposes its ID in the X-Trace-Id response
// header, and records the finished trace into the flight recorder and
// the OTLP exporter. A request the caller explicitly traced (?trace=1
// or traceparent) is always retained; when a sampler is configured,
// every other traceable request is traced too and the sampler decides
// retention at completion, when duration/status/attrs exist.
func (s *server) instrument(route string, traceable bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		var tr *trace.Trace
		explicit := wantsTrace(req)
		if traceable && (explicit || s.sampler != nil) {
			tr = trace.FromParent(req.Header.Get("traceparent"))
			tr.SetName(req.Method + " " + route)
			tr.SetAttrs(
				trace.Str("route", route),
				trace.Str("method", req.Method),
			)
			req = req.WithContext(trace.NewContext(req.Context(), tr))
			w.Header().Set("X-Trace-Id", tr.ID())
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, req)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(t0)
		if tr != nil {
			tr.SetAttrs(trace.Int("status", int64(status)))
			tr.Finish()
			if explicit || s.sampler.Sample(tr, status).Keep {
				s.recorder.Record(tr)
				s.exporter.Record(tr)
			}
		}
		s.slo.Observe(status, dur)
		s.log.Info("request",
			"method", req.Method,
			"route", route,
			"status", status,
			"duration_ms", float64(dur.Nanoseconds())/1e6,
			"trace_id", tr.ID(),
		)
	}
}

// handleTraces is GET /v1/traces: the flight recorder's retained
// traces, newest first, filterable with ?machine=NAME and ?min_ms=N.
func (s *server) handleTraces(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/traces")
		return
	}
	q := req.URL.Query()
	machine := q.Get("machine")
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad min_ms: want a non-negative number of milliseconds")
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	out := []serverapi.TraceInfo{}
	for _, t := range s.recorder.Snapshot() {
		if t.Duration() < minDur {
			continue
		}
		info := traceInfo(t)
		if machine != "" && info.Machine != machine {
			continue
		}
		out = append(out, info)
	}
	writeJSON(w, out)
}

// handleTraceByID is GET /v1/traces/{id}: the full span tree of one
// retained trace.
func (s *server) handleTraceByID(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/traces/{id}")
		return
	}
	id := strings.TrimPrefix(req.URL.Path, serverapi.Version+"/traces/")
	t := s.recorder.Find(id)
	if t == nil {
		writeError(w, http.StatusNotFound, "trace "+id+" not in the flight recorder (evicted or never recorded)")
		return
	}
	writeJSON(w, t)
}

// traceInfo summarizes one trace for the list endpoint. The machine
// name lives on the engine.exec span, not the trace itself.
func traceInfo(t *trace.Trace) serverapi.TraceInfo {
	info := serverapi.TraceInfo{
		TraceID:     t.ID(),
		Name:        t.Name(),
		Error:       t.Error(),
		StartUnixNs: t.StartTime().UnixNano(),
		DurationNs:  int64(t.Duration()),
	}
	spans := t.Spans()
	info.Spans = len(spans)
	for _, sp := range spans {
		if sp.Name != engine.SpanExec {
			continue
		}
		if a, ok := trace.FindAttr(sp.Attrs, engine.AttrMachine); ok {
			info.Machine = a.Text()
			break
		}
	}
	return info
}

// buildExplain renders a trace's span tree as the inline explain block
// of POST /v1/run?trace=1. It walks the spans the engine and core
// emitted — addressed by their exported name/attr constants — so its
// numbers are exactly what landed in the aggregate telemetry.
func buildExplain(tr *trace.Trace) *serverapi.Explain {
	ex := &serverapi.Explain{}
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case engine.SpanQueue:
			ex.QueueWaitNs += int64(sp.Duration)
		case engine.SpanExec:
			if a, ok := trace.FindAttr(sp.Attrs, engine.AttrLane); ok {
				ex.Lane = a.Text()
			}
			if a, ok := trace.FindAttr(sp.Attrs, engine.AttrLaneReason); ok {
				ex.LaneReason = a.Text()
			}
		case core.SpanSingle:
			if a, ok := trace.FindAttr(sp.Attrs, core.AttrStrategy); ok {
				ex.Strategy = a.Text()
			}
			ex.ChunkCount = 1
			ex.Chunks = append(ex.Chunks, explainChunk(sp))
		case core.SpanMulticore, core.SpanChunked:
			if a, ok := trace.FindAttr(sp.Attrs, core.AttrStrategy); ok {
				ex.Strategy = a.Text()
			}
			if a, ok := trace.FindAttr(sp.Attrs, core.AttrChunks); ok {
				ex.ChunkCount = int(a.Int64())
			}
		case core.SpanPhase1Chunk:
			ex.Chunks = append(ex.Chunks, explainChunk(sp))
		}
	}
	// Phase-1 chunk spans end in goroutine completion order; present
	// them in chunk order.
	sort.Slice(ex.Chunks, func(i, j int) bool { return ex.Chunks[i].Index < ex.Chunks[j].Index })
	return ex
}

// explainChunk lifts one single-run or phase-1-chunk span into the
// wire shape.
func explainChunk(sp trace.SpanView) serverapi.ExplainChunk {
	attr := func(key string) int64 {
		a, _ := trace.FindAttr(sp.Attrs, key)
		return a.Int64()
	}
	c := serverapi.ExplainChunk{
		Index:       int(attr(core.AttrChunk)),
		Offset:      attr(core.AttrOffset),
		Bytes:       attr(core.AttrBytes),
		DurationNs:  int64(sp.Duration),
		Gathers:     attr(core.AttrGathers),
		Shuffles:    attr(core.AttrShuffles),
		FactorCalls: attr(core.AttrFactorCalls),
		FactorWins:  attr(core.AttrFactorWins),
		WidthStart:  int(attr(core.AttrWidthStart)),
		WidthFinal:  int(attr(core.AttrWidthFinal)),
		ConvergedAt: int(attr(core.AttrConvergedAt)),
	}
	if a, ok := trace.FindAttr(sp.Attrs, core.AttrWidths); ok {
		c.Widths = a.Text()
	}
	return c
}
