package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/serverapi"
)

// getStatus fetches and decodes GET /v1/status.
func getStatus(t *testing.T, ts *httptest.Server) serverapi.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/status = %d", resp.StatusCode)
	}
	var st serverapi.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := testServer(t)

	// Run one matching job so the profiles have something to show.
	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli", "application/octet-stream",
		strings.NewReader("id=1 UNION  SELECT password"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st := getStatus(t, ts)
	if st.Service != "fsmserve" || st.GoVersion == "" || st.PID == 0 {
		t.Fatalf("identity fields missing: %+v", st)
	}
	if st.UptimeNs <= 0 {
		t.Fatalf("uptime = %d", st.UptimeNs)
	}
	if st.QueueCap <= 0 || st.QueueDepth < 0 {
		t.Fatalf("queue fields: depth=%d cap=%d", st.QueueDepth, st.QueueCap)
	}
	if st.Machines != len(st.Profiles) || st.Machines == 0 {
		t.Fatalf("machines=%d profiles=%d", st.Machines, len(st.Profiles))
	}
	// The default registrations compiled (all misses) → hit rate field
	// present and in range.
	if st.PlanCacheHitRate < 0 || st.PlanCacheHitRate > 1 {
		t.Fatalf("plan-cache hit rate %g", st.PlanCacheHitRate)
	}
	if st.ShedRate < 0 || st.ShedRate > 1 {
		t.Fatalf("shed rate %g", st.ShedRate)
	}
	// The sqli machine ran one job through the synchronous /v1/run
	// path; its profile must show it, with runner-level counters.
	var found bool
	for _, p := range st.Profiles {
		if p.Machine != "sqli" {
			continue
		}
		found = true
		if p.Jobs != 1 || p.Bytes == 0 {
			t.Fatalf("sqli profile jobs=%d bytes=%d", p.Jobs, p.Bytes)
		}
		if p.Symbols == 0 {
			t.Fatalf("sqli profile has no runner-level symbols: %+v", p)
		}
		if p.Strategy == "" || p.Fingerprint == "" {
			t.Fatalf("sqli profile missing identity: %+v", p)
		}
	}
	if !found {
		t.Fatal("no profile for machine sqli")
	}
	if st.Runtime.Goroutines <= 0 {
		t.Fatalf("runtime goroutines = %d", st.Runtime.Goroutines)
	}
}

// TestStatusProfilesSurviveRestart is the acceptance-criteria
// integration test: profiles persisted into the plan-cache directory
// seed the next process's recorders, so lifetime counters keep
// accumulating across a restart.
func TestStatusProfilesSurviveRestart(t *testing.T) {
	dir := t.TempDir()

	boot := func() (*server, *httptest.Server) {
		srv, err := newServer(nil, core.Auto, 1, 1<<20, dir)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.mux())
		return srv, ts
	}

	srv1, ts1 := boot()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts1.URL+"/v1/run?machine=sqli", "application/octet-stream",
			strings.NewReader("id=1 UNION  SELECT password"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	before := getStatus(t, ts1)
	ts1.Close()
	srv1.Close() // flushes profiles into dir

	// "Restart": a fresh server over the same plan-cache directory.
	srv2, ts2 := boot()
	defer srv2.Close()
	defer ts2.Close()
	after := getStatus(t, ts2)

	profile := func(st serverapi.Status, machine string) (p struct {
		jobs, bytes int64
	}) {
		for _, pr := range st.Profiles {
			if pr.Machine == machine {
				p.jobs, p.bytes = pr.Jobs, pr.Bytes
			}
		}
		return p
	}
	b, a := profile(before, "sqli"), profile(after, "sqli")
	if b.jobs != 3 {
		t.Fatalf("pre-restart jobs = %d, want 3", b.jobs)
	}
	if a.jobs != b.jobs || a.bytes != b.bytes {
		t.Fatalf("restart lost profile counts: before %+v, after %+v", b, a)
	}

	// And the counters keep accumulating on top of the baseline.
	resp, err := http.Post(ts2.URL+"/v1/run?machine=sqli", "application/octet-stream",
		strings.NewReader("id=1 UNION  SELECT password"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := profile(getStatus(t, ts2), "sqli"); got.jobs != 4 {
		t.Fatalf("post-restart accumulation: jobs = %d, want 4", got.jobs)
	}
}

// TestMetricsIncludesRuntimeAndQueueDepth checks the satellite
// additions to the Prometheus surface.
func TestMetricsIncludesRuntimeAndQueueDepth(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"dpfsm_engine_queue_depth",
		"dpfsm_runtime_goroutines",
		"dpfsm_runtime_gc_cycles_total",
		"dpfsm_runtime_sched_latency_p99_ns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
