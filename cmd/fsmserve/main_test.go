package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/serverapi"
	"dpfsm/internal/telemetry"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(nil, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close) // runs after ts.Close has quiesced requests
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t)

	// A matching input against the default "sqli" machine, on the v1
	// route.
	body := strings.NewReader("id=1 UNION  SELECT password FROM users")
	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli&first=1", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res serverapi.RunResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !res.Accepts {
		t.Errorf("sqli machine should accept: %+v", res)
	}
	if res.FirstMatch == nil || *res.FirstMatch < 0 {
		t.Errorf("first=1 should report a match position: %+v", res)
	}
	if res.Bytes == 0 || res.DurationNs <= 0 {
		t.Errorf("run accounting: %+v", res)
	}
	if res.Lane == "" || res.Strategy == "" || res.Strategy == "auto" {
		t.Errorf("run result missing dispatch fields: lane=%q strategy=%q", res.Lane, res.Strategy)
	}

	// Default machine (first pattern) on a clean input.
	resp2, err := http.Post(ts.URL+"/v1/run", "", strings.NewReader("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res2 serverapi.RunResult
	if err := json.NewDecoder(resp2.Body).Decode(&res2); err != nil {
		t.Fatal(err)
	}
	if res2.Accepts || res2.Machine != "sqli" {
		t.Errorf("clean input: %+v", res2)
	}

	// An explicit per-request strategy pin echoes back in the result.
	resp3, err := http.Post(ts.URL+"/v1/run?machine=sqli&strategy=sequential", "", strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var res3 serverapi.RunResult
	if err := json.NewDecoder(resp3.Body).Decode(&res3); err != nil {
		t.Fatal(err)
	}
	if res3.Strategy != "sequential" {
		t.Errorf("?strategy=sequential echoed %q", res3.Strategy)
	}

	// Errors carry the shared envelope with a stable code: GET is
	// rejected, unknown machines 404, bad params 400.
	checkErr := func(resp *http.Response, status int, code string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("status %d, want %d", resp.StatusCode, status)
		}
		var e serverapi.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error body: %v", err)
		}
		if e.Code != code || e.Error == "" {
			t.Errorf("error envelope %+v, want code %q", e, code)
		}
	}
	r, _ := http.Get(ts.URL + "/v1/run")
	checkErr(r, http.StatusMethodNotAllowed, serverapi.CodeMethodNotAllowed)
	r, _ = http.Post(ts.URL+"/v1/run?machine=nope", "", strings.NewReader("x"))
	checkErr(r, http.StatusNotFound, serverapi.CodeNotFound)
	r, _ = http.Post(ts.URL+"/v1/run?machine=sqli&start=9999", "", strings.NewReader("x"))
	checkErr(r, http.StatusBadRequest, serverapi.CodeBadRequest)
	r, _ = http.Post(ts.URL+"/v1/run?machine=sqli&strategy=warp", "", strings.NewReader("x"))
	checkErr(r, http.StatusBadRequest, serverapi.CodeBadRequest)

	// The unversioned aliases completed their deprecation cycle: gone.
	r, _ = http.Post(ts.URL+"/run", "", strings.NewReader("x"))
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("removed alias /run: status %d, want 404", r.StatusCode)
	}
	r.Body.Close()
}

// TestBatchEndpoint drives /v1/batch with a mix of good jobs, a
// binary (base64) payload, a bad line, and an unknown machine, and
// checks the streamed NDJSON results plus the summary trailer.
func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t)

	lines := []string{
		`{"machine":"sqli","input":"id=1 UNION  SELECT x"}`,
		`{"machine":"traversal","input":"GET ../../etc/passwd"}`,
		`{"input":"clean text"}`,                                 // default machine
		`{"machine":"nopsled","input_b64":"` + "kJCQkA==" + `"}`, // \x90\x90\x90\x90
		`this is not json`,
		`{"machine":"ghost","input":"x"}`,
	}
	body := strings.NewReader(strings.Join(lines, "\n") + "\n")
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	results := make(map[int]serverapi.BatchResult)
	var trailer *serverapi.BatchTrailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"summary"`)) {
			trailer = new(serverapi.BatchTrailer)
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			continue
		}
		var br serverapi.BatchResult
		if err := json.Unmarshal(line, &br); err != nil {
			t.Fatalf("result line %q: %v", line, err)
		}
		if trailer != nil {
			t.Error("result line after the summary trailer")
		}
		results[br.Index] = br
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if trailer == nil {
		t.Fatal("no summary trailer")
	}
	if len(results) != len(lines) {
		t.Fatalf("%d result lines for %d jobs", len(results), len(lines))
	}

	wantAccepts := map[int]bool{0: true, 1: true, 2: false, 3: true}
	for idx, want := range wantAccepts {
		r, ok := results[idx]
		if !ok {
			t.Errorf("job %d missing", idx)
			continue
		}
		if r.Error != "" || r.Accepts != want {
			t.Errorf("job %d: %+v, want accepts=%v", idx, r, want)
		}
	}
	if r := results[2]; r.Machine != "sqli" {
		t.Errorf("default machine: %+v", r)
	}
	if r := results[4]; r.Error == "" {
		t.Error("bad JSON line should carry an error")
	}
	if r := results[5]; !strings.Contains(r.Error, "unknown machine") {
		t.Errorf("unknown machine error = %q", r.Error)
	}

	sum := trailer.Summary
	if sum.Jobs != len(lines) || sum.OK != 4 || sum.Errors != 2 {
		t.Errorf("summary %+v", sum)
	}
	if sum.SingleCore != 4 || sum.Multicore != 0 {
		t.Errorf("summary lanes: %+v", sum)
	}
	if sum.Bytes == 0 || sum.DurationNs <= 0 {
		t.Errorf("summary accounting: %+v", sum)
	}
}

func TestMetricsEndpointNonZeroUnderLoad(t *testing.T) {
	srv, ts := testServer(t)

	// Drive some load so the gauges move.
	payload := bytes.Repeat([]byte("GET /cgi-bin/x.pl HTTP/1.1\n"), 2000)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/run?machine=cgi", "", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := sb.String()
	if !strings.Contains(out, "dpfsm_runs_total 5") {
		t.Errorf("metrics missing run count:\n%s", out)
	}
	for _, series := range []string{
		"dpfsm_symbols_total", "dpfsm_shuffles_total", "dpfsm_shuffles_per_symbol",
		"dpfsm_engine_jobs_total", "dpfsm_engine_single_core_total",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
	if strings.Contains(out, "dpfsm_symbols_total 0\n") {
		t.Error("symbols gauge still zero under load")
	}
	snap := srv.metrics.Snapshot()
	if snap.Symbols != int64(5*len(payload)) {
		t.Errorf("Symbols = %d, want %d", snap.Symbols, 5*len(payload))
	}
	if snap.ShufflesPerSymbol <= 0 {
		t.Errorf("ShufflesPerSymbol = %v, want > 0", snap.ShufflesPerSymbol)
	}
	if snap.EngineJobs != 5 {
		t.Errorf("EngineJobs = %d, want 5", snap.EngineJobs)
	}

	// The unversioned alias is gone.
	ra, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Body.Close()
	if ra.StatusCode != http.StatusNotFound {
		t.Errorf("removed alias /metrics: status %d, want 404", ra.StatusCode)
	}
}

func TestSnapshotAndMachinesEndpoints(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/run", "", strings.NewReader("some bytes"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var snap telemetry.Snapshot
	r2, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != 1 {
		t.Errorf("snapshot runs = %d", snap.Runs)
	}

	var machines []serverapi.MachineInfo
	r3, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if err := json.NewDecoder(r3.Body).Decode(&machines); err != nil {
		t.Fatal(err)
	}
	if len(machines) != len(defaultPatterns) {
		t.Fatalf("machines = %d, want %d", len(machines), len(defaultPatterns))
	}
	for _, m := range machines {
		if m.Stats.States == 0 || m.Stats.MaxRange == 0 || m.Strategy == core.Auto {
			t.Errorf("machine %q missing stats: %+v", m.Name, m)
		}
		if m.Fingerprint == "" || m.Source != "default" {
			t.Errorf("machine %q missing registry metadata: %+v", m.Name, m)
		}
	}

	// The unversioned aliases are gone.
	for _, route := range []string{"/snapshot", "/machines"} {
		ra, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		ra.Body.Close()
		if ra.StatusCode != http.StatusNotFound {
			t.Errorf("removed alias %s: status %d, want 404", route, ra.StatusCode)
		}
	}
}

// TestMachineProfileEndpoint covers GET /v1/machines/{name} and its
// /profile sub-resource: after some traffic the profile carries lane
// history and the current adaptive selection, and /v1/status lists
// the same selection per machine.
func TestMachineProfileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/run?machine=sqli", "", strings.NewReader("id=1 UNION  SELECT x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var info serverapi.MachineInfo
	ri, err := http.Get(ts.URL + "/v1/machines/sqli")
	if err != nil {
		t.Fatal(err)
	}
	defer ri.Body.Close()
	if err := json.NewDecoder(ri.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "sqli" || info.Stats.States == 0 {
		t.Errorf("machine info: %+v", info)
	}

	var mp serverapi.MachineProfile
	rp, err := http.Get(ts.URL + "/v1/machines/sqli/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Body.Close()
	if rp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d", rp.StatusCode)
	}
	if err := json.NewDecoder(rp.Body).Decode(&mp); err != nil {
		t.Fatal(err)
	}
	if mp.Machine.Name != "sqli" {
		t.Errorf("profile machine: %+v", mp.Machine)
	}
	if mp.Profile == nil || mp.Profile.Jobs == 0 {
		t.Errorf("profile missing observed history: %+v", mp.Profile)
	}
	if mp.Selection.Lane == "" || mp.Selection.Reason == "" {
		t.Errorf("profile missing selection: %+v", mp.Selection)
	}

	rn, _ := http.Get(ts.URL + "/v1/machines/ghost/profile")
	rn.Body.Close()
	if rn.StatusCode != http.StatusNotFound {
		t.Errorf("unknown machine profile: status %d", rn.StatusCode)
	}
	rb, _ := http.Get(ts.URL + "/v1/machines/sqli/bogus")
	rb.Body.Close()
	if rb.StatusCode != http.StatusNotFound {
		t.Errorf("bogus sub-resource: status %d", rb.StatusCode)
	}

	var st serverapi.Status
	rs, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Body.Close()
	if err := json.NewDecoder(rs.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Selections) != len(defaultPatterns) {
		t.Fatalf("status selections = %d, want %d", len(st.Selections), len(defaultPatterns))
	}
	for _, sel := range st.Selections {
		if sel.Machine == "" || sel.Lane == "" || sel.Reason == "" {
			t.Errorf("status selection incomplete: %+v", sel)
		}
	}
}

func TestDebugSurfaces(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/run", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// /debug/vars must be valid JSON and include the published sink.
	rv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(rv.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["dpfsm"]; !ok {
		t.Error("/debug/vars missing dpfsm")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	// pprof index should list profiles.
	rp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Body.Close()
	if rp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", rp.StatusCode)
	}

	rh, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rh.Body.Close()
	if rh.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", rh.StatusCode)
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, err := newServer([]string{"noequals"}, core.Auto, 1, 1<<20, ""); err == nil {
		t.Error("pattern without NAME= should error")
	}
	if _, err := newServer([]string{"a=x(", "b=y"}, core.Auto, 1, 1<<20, ""); err == nil {
		t.Error("bad regex should error")
	}
	if _, err := newServer([]string{"a=x", "a=y"}, core.Auto, 1, 1<<20, ""); err == nil {
		t.Error("duplicate names should error")
	}
}

func TestLoadPatternsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	content := "# IDS rules\n\nalpha=abc\n  beta=d.*e  \n# trailing comment\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	patterns, err := loadPatternsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha=abc", "beta=d.*e"}
	if len(patterns) != len(want) {
		t.Fatalf("patterns = %v, want %v", patterns, want)
	}
	for i := range want {
		if patterns[i] != want[i] {
			t.Errorf("pattern %d = %q, want %q", i, patterns[i], want[i])
		}
	}
	srv, err := newServer(patterns, core.Auto, 1, 1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if len(srv.order) != 2 || srv.order[0] != "alpha" {
		t.Errorf("server order = %v", srv.order)
	}

	if _, err := loadPatternsFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}
