package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpfsm/internal/core"
	"dpfsm/internal/telemetry"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(nil, core.Auto, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t)

	// A matching input against the default "sqli" machine.
	body := strings.NewReader("id=1 UNION  SELECT password FROM users")
	resp, err := http.Post(ts.URL+"/run?machine=sqli&first=1", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res runResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !res.Accepts {
		t.Errorf("sqli machine should accept: %+v", res)
	}
	if res.FirstMatch == nil || *res.FirstMatch < 0 {
		t.Errorf("first=1 should report a match position: %+v", res)
	}
	if res.Bytes == 0 || res.DurationNs <= 0 {
		t.Errorf("run accounting: %+v", res)
	}

	// Default machine (first pattern) on a clean input.
	resp2, err := http.Post(ts.URL+"/run", "", strings.NewReader("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res2 runResult
	if err := json.NewDecoder(resp2.Body).Decode(&res2); err != nil {
		t.Fatal(err)
	}
	if res2.Accepts || res2.Machine != "sqli" {
		t.Errorf("clean input: %+v", res2)
	}

	// Errors: GET is rejected, unknown machines 404.
	if resp, _ := http.Get(ts.URL + "/run"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status %d", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/run?machine=nope", "", strings.NewReader("x")); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown machine status %d", resp.StatusCode)
	}
}

func TestMetricsEndpointNonZeroUnderLoad(t *testing.T) {
	srv, ts := testServer(t)

	// Drive some load so the gauges move.
	payload := bytes.Repeat([]byte("GET /cgi-bin/x.pl HTTP/1.1\n"), 2000)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/run?machine=cgi", "", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := sb.String()
	if !strings.Contains(out, "dpfsm_runs_total 5") {
		t.Errorf("metrics missing run count:\n%s", out)
	}
	for _, series := range []string{"dpfsm_symbols_total", "dpfsm_shuffles_total", "dpfsm_shuffles_per_symbol"} {
		if !strings.Contains(out, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
	if strings.Contains(out, "dpfsm_symbols_total 0\n") {
		t.Error("symbols gauge still zero under load")
	}
	snap := srv.metrics.Snapshot()
	if snap.Symbols != int64(5*len(payload)) {
		t.Errorf("Symbols = %d, want %d", snap.Symbols, 5*len(payload))
	}
	if snap.ShufflesPerSymbol <= 0 {
		t.Errorf("ShufflesPerSymbol = %v, want > 0", snap.ShufflesPerSymbol)
	}
}

func TestSnapshotAndMachinesEndpoints(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/run", "", strings.NewReader("some bytes"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var snap telemetry.Snapshot
	r2, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != 1 {
		t.Errorf("snapshot runs = %d", snap.Runs)
	}

	var machines []machine
	r3, err := http.Get(ts.URL + "/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if err := json.NewDecoder(r3.Body).Decode(&machines); err != nil {
		t.Fatal(err)
	}
	if len(machines) != len(defaultPatterns) {
		t.Fatalf("machines = %d, want %d", len(machines), len(defaultPatterns))
	}
	for _, m := range machines {
		if m.Stats.States == 0 || m.Stats.MaxRange == 0 || m.Strategy == "" {
			t.Errorf("machine %q missing stats: %+v", m.Name, m)
		}
	}
}

func TestDebugSurfaces(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/run", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// /debug/vars must be valid JSON and include the published sink.
	rv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(rv.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["dpfsm"]; !ok {
		t.Error("/debug/vars missing dpfsm")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	// pprof index should list profiles.
	rp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Body.Close()
	if rp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", rp.StatusCode)
	}

	rh, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rh.Body.Close()
	if rh.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", rh.StatusCode)
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, err := newServer([]string{"noequals"}, core.Auto, 1, 1<<20); err == nil {
		t.Error("pattern without NAME= should error")
	}
	if _, err := newServer([]string{"a=x(", "b=y"}, core.Auto, 1, 1<<20); err == nil {
		t.Error("bad regex should error")
	}
	if _, err := newServer([]string{"a=x", "a=y"}, core.Auto, 1, 1<<20); err == nil {
		t.Error("duplicate names should error")
	}
}
