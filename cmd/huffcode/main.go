// Command huffcode compresses and decompresses files with the Huffman
// substrate, choosing among the three decoders of the §6.2 case study:
// the bit-walking baseline, the byte-unrolled FSM, and the
// data-parallel decoder.
//
// The container format is minimal and self-describing: a magic header,
// the 256-entry symbol frequency table (so the decoder can rebuild the
// identical tree), the bit count, the output byte count, and the
// payload.
//
// Usage:
//
//	huffcode -encode -in book.txt -out book.huf
//	huffcode -decode -in book.huf -out book.txt [-decoder bitwalk|fsm|coalesced|parallel] [-procs N]
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/huffman"
)

var magic = []byte("DPHF")

func main() {
	encode := flag.Bool("encode", false, "compress -in to -out")
	decode := flag.Bool("decode", false, "decompress -in to -out")
	in := flag.String("in", "", "input file (required)")
	out := flag.String("out", "", "output file (required)")
	decoder := flag.String("decoder", "parallel", "bitwalk, fsm, coalesced, or parallel")
	procs := flag.Int("procs", 0, "processor count for the parallel decoder (0 = all)")
	verbose := flag.Bool("v", false, "print timing")
	flag.Parse()

	if *encode == *decode || *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "huffcode: need exactly one of -encode/-decode plus -in and -out")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var result []byte
	if *encode {
		result, err = doEncode(data)
	} else {
		result, err = doDecode(data, *decoder, *procs)
	}
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, result, 0o644); err != nil {
		fatal(err)
	}
	if *verbose {
		dur := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d → %d bytes in %v (%.1f MB/s)\n",
			len(data), len(result), dur, float64(len(data))/dur.Seconds()/1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "huffcode:", err)
	os.Exit(1)
}

func doEncode(text []byte) ([]byte, error) {
	if len(text) == 0 {
		return nil, errors.New("refusing to encode an empty file")
	}
	var freq [256]int64
	for _, b := range text {
		freq[b]++
	}
	codec, err := huffman.New(&freq)
	if err != nil {
		return nil, err
	}
	enc, err := codec.Encode(text)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(magic)
	if err := binary.Write(&buf, binary.LittleEndian, freq); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, int64(enc.NBits)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, int64(enc.NOut)); err != nil {
		return nil, err
	}
	buf.Write(enc.Data)
	return buf.Bytes(), nil
}

func doDecode(blob []byte, decoder string, procs int) ([]byte, error) {
	r := bytes.NewReader(blob)
	head := make([]byte, len(magic))
	if _, err := r.Read(head); err != nil || !bytes.Equal(head, magic) {
		return nil, errors.New("not a huffcode file")
	}
	var freq [256]int64
	if err := binary.Read(r, binary.LittleEndian, &freq); err != nil {
		return nil, err
	}
	var nbits, nout int64
	if err := binary.Read(r, binary.LittleEndian, &nbits); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &nout); err != nil {
		return nil, err
	}
	payload := blob[len(blob)-r.Len():]
	enc := huffman.Encoded{Data: payload, NBits: int(nbits), NOut: int(nout)}

	codec, err := huffman.New(&freq)
	if err != nil {
		return nil, err
	}
	switch decoder {
	case "bitwalk":
		return codec.DecodeBitwalk(enc), nil
	case "fsm":
		f, err := codec.DecoderFSM()
		if err != nil {
			return nil, err
		}
		return f.DecodeSequential(enc), nil
	case "coalesced":
		f, err := codec.DecoderFSM()
		if err != nil {
			return nil, err
		}
		return f.NewCoalescedDecoder().Decode(enc), nil
	case "parallel":
		f, err := codec.DecoderFSM()
		if err != nil {
			return nil, err
		}
		return f.DecodeParallel(enc, core.WithProcs(procs))
	default:
		return nil, fmt.Errorf("unknown decoder %q", decoder)
	}
}
