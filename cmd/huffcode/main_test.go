package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTripAllDecoders(t *testing.T) {
	text := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	blob, err := doEncode(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(text)+2048+16 {
		t.Errorf("no compression: %d → %d", len(text), len(blob))
	}
	for _, dec := range []string{"bitwalk", "fsm", "coalesced", "parallel"} {
		out, err := doDecode(blob, dec, 2)
		if err != nil {
			t.Fatalf("%s: %v", dec, err)
		}
		if !bytes.Equal(out, text) {
			t.Fatalf("%s: roundtrip failed (%d vs %d bytes)", dec, len(out), len(text))
		}
	}
}

func TestEncodeEmptyRejected(t *testing.T) {
	if _, err := doEncode(nil); err == nil {
		t.Error("empty input should be rejected")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := doDecode([]byte("garbage"), "fsm", 1); err == nil {
		t.Error("garbage blob should fail")
	}
	blob, _ := doEncode([]byte("hello hello hello"))
	if _, err := doDecode(blob, "nonsense", 1); err == nil {
		t.Error("unknown decoder should fail")
	}
	// Corrupt the magic.
	bad := append([]byte{}, blob...)
	bad[0] ^= 0xFF
	if _, err := doDecode(bad, "fsm", 1); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestContainerIsSelfDescribing(t *testing.T) {
	a := []byte(strings.Repeat("aabbbbcccccc", 300))
	blob, err := doEncode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Decoding must not need any side information beyond the blob.
	out, err := doDecode(blob, "fsm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, a) {
		t.Fatal("self-contained decode failed")
	}
}
