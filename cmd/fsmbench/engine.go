package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"dpfsm/internal/engine"
	"dpfsm/internal/regex"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/trace"
	"dpfsm/internal/workload"
)

// engineExperiment drives the batch engine the way fsmserve does: a
// mixed batch of small jobs (single-core lane, batch-level parallelism)
// and large jobs (multicore lane, Figure 5 input-level parallelism)
// over a Snort-shaped rule set. With -trace-out set, every job gets a
// request-scoped trace via the engine's sink and the slowest -trace-top
// span trees are written as JSON — the offline counterpart of
// fsmserve's /v1/traces flight recorder.
func engineExperiment(opt *options) {
	header("engine — batch lanes over mixed job sizes (+ optional execution traces)")

	met := new(telemetry.Metrics)
	engOpts := []engine.Option{
		engine.WithTelemetry(met),
		engine.WithProcs(opt.procs),
	}
	var rec *trace.Recorder
	if opt.traceOut != "" {
		rec = trace.NewRecorder(4096)
		engOpts = append(engOpts, engine.WithTraceSink(rec))
	}
	eng := engine.New(engOpts...)
	defer eng.Close()

	patterns := []struct{ name, pat string }{
		{"sqli", `UNION\s+SELECT`},
		{"traversal", `\.\./\.\./`},
		{"cgi", `/cgi-bin/.*\.(pl|sh)`},
	}
	for _, p := range patterns {
		d, err := regex.Compile(p.pat, regex.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine experiment: pattern %q: %v\n", p.name, err)
			return
		}
		if _, err := eng.Register(p.name, d); err != nil {
			fmt.Fprintf(os.Stderr, "engine experiment: register %q: %v\n", p.name, err)
			return
		}
	}

	// Mixed sizes: 48 small jobs stay under the large-input threshold,
	// 4 jobs of -mb MiB cross it and take the multicore lane.
	small := workload.HTTPTraffic(opt.seed+70, 64<<10)
	large := workload.HTTPTraffic(opt.seed+71, opt.mb<<20)
	var jobs []engine.Job
	for i := 0; i < 48; i++ {
		jobs = append(jobs, engine.Job{Machine: patterns[i%len(patterns)].name, Input: small})
	}
	for i := 0; i < 4; i++ {
		jobs = append(jobs, engine.Job{Machine: patterns[i%len(patterns)].name, Input: large})
	}

	_, stats := eng.RunBatch(context.Background(), jobs)
	snap := met.Snapshot()

	fmt.Printf("%-8s %6s %6s %8s %8s %12s %9s %12s %12s %12s\n",
		"jobs", "ok", "err", "single", "multi", "bytes", "MB/s", "p50(ms)", "p90(ms)", "p99(ms)")
	fmt.Printf("%-8d %6d %6d %8d %8d %12d %9.1f %12.3f %12.3f %12.3f\n",
		stats.Jobs, stats.OK, stats.Errors, stats.SingleCore, stats.Multicore,
		stats.Bytes, mbps(int(stats.Bytes), stats.Duration),
		float64(snap.EngineJobLatencyP50)/1e6,
		float64(snap.EngineJobLatencyP90)/1e6,
		float64(snap.EngineJobLatencyP99)/1e6)
	recordRow(reportRow{
		Experiment: "engine",
		Machine:    "snort-mixed",
		Strategy:   "auto",
		Workload:   "http",
		Bytes:      int(stats.Bytes),
		NsPerOp:    int64(stats.Duration),
		MBPerS:     mbps(int(stats.Bytes), stats.Duration),
		Telemetry:  &snap,
	})

	if rec != nil {
		if err := writeTraces(opt.traceOut, rec, opt.traceTop); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", opt.traceOut, err)
			os.Exit(1)
		}
	}
}

// writeTraces dumps the slowest top span trees from the recorder as an
// indented JSON array.
func writeTraces(path string, rec *trace.Recorder, top int) error {
	traces := rec.Snapshot()
	sort.Slice(traces, func(i, j int) bool { return traces[i].Duration() > traces[j].Duration() })
	if top > 0 && len(traces) > top {
		traces = traces[:top]
	}
	data, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	var slowest time.Duration
	if len(traces) > 0 {
		slowest = traces[0].Duration()
	}
	fmt.Printf("\nwrote %d slowest job traces to %s (slowest %v)\n", len(traces), path, slowest)
	return nil
}
