package main

import (
	"fmt"
	"sync"

	"dpfsm/internal/fsm"
	"dpfsm/internal/workload"
)

// Shared corpus construction for the regex figures. Compiled once per
// process and memoized, since -experiment all runs several figures
// over the same corpus.

var corpusCache struct {
	sync.Mutex
	key      string
	machines []*fsm.DFA
	specs    []workload.PatternSpec
}

func corpus(opt *options) ([]*fsm.DFA, []workload.PatternSpec) {
	corpusCache.Lock()
	defer corpusCache.Unlock()
	key := fmt.Sprintf("%d/%d", opt.seed, opt.corpus)
	if corpusCache.key == key {
		return corpusCache.machines, corpusCache.specs
	}
	specs := workload.SnortRegexes(opt.seed, opt.corpus)
	ms, kept := workload.CompileCorpus(specs, 20000)
	corpusCache.key = key
	corpusCache.machines = ms
	corpusCache.specs = kept
	fmt.Printf("[corpus] %d/%d generated rules compiled (seed %d)\n", len(ms), opt.corpus, opt.seed)
	return ms, kept
}

// sampleMachines picks every k-th machine to get about want machines,
// preserving the size distribution (the paper random-samples 269 of
// 2711 for its timing figures).
func sampleMachines(ms []*fsm.DFA, want int) []*fsm.DFA {
	if want <= 0 || want >= len(ms) {
		return ms
	}
	step := len(ms) / want
	if step < 1 {
		step = 1
	}
	var out []*fsm.DFA
	for i := 0; i < len(ms) && len(out) < want; i += step {
		out = append(out, ms[i])
	}
	return out
}
