package main

import (
	"fmt"
	"time"

	"dpfsm/internal/huffman"
	"dpfsm/internal/workload"
)

// Figure 16: single-core Huffman decode throughput per book. The
// paper's bars compare its optimized sequential baseline (byte-unrolled
// FSM) against the range-coalesced decoder, observing ≈2× (1.75× for
// three books); we additionally report the bit-walking libhuffman-style
// decoder, which the paper describes as two orders of magnitude slower
// than the byte-unrolled baseline (§6.2).
func fig16(opt *options) {
	header("Figure 16 — Huffman single-core decode throughput (MB/s per book)")
	payload := workload.WikiText(opt.seed+16, opt.mb<<20)

	fmt.Printf("%-6s %-7s %-6s %10s %12s %12s %9s\n",
		"book", "states", "range", "bitwalk", "sequential", "coalesced", "co/seq")
	for b := 0; b < numBooks; b++ {
		bookText := workload.Book(opt.seed*1000+int64(b), 1<<18)
		codec, err := huffman.FromSample(append(append([]byte{}, bookText...), payload...))
		if err != nil {
			continue
		}
		f, err := codec.DecoderFSM()
		if err != nil {
			continue
		}
		enc, err := codec.Encode(payload)
		if err != nil {
			continue
		}
		cd := f.NewCoalescedDecoder()

		var out []byte
		// Bit-walking baseline is slow: time it on a slice and scale.
		smallN := len(payload) / 16
		small, _ := codec.Encode(payload[:smallN])
		tBitwalk := timeIt(30*time.Millisecond, func() { out = codec.DecodeBitwalk(small) })
		tSeq := timeIt(50*time.Millisecond, func() { out = f.DecodeSequential(enc) })
		tCoal := timeIt(50*time.Millisecond, func() { out = cd.Decode(enc) })
		_ = out

		fmt.Printf("%-6d %-7d %-6d %10.1f %12.1f %12.1f %8.2f×\n",
			b, f.ByteMachine.NumStates(), f.ByteMachine.MaxRangeSize(),
			mbps(smallN, tBitwalk), mbps(len(payload), tSeq), mbps(len(payload), tCoal),
			float64(tSeq)/float64(tCoal))
	}
	fmt.Println("\nthroughputs are decoded-output MB/s; paper: coalesced ≈2× sequential, bitwalk ~2 orders slower than sequential")
}
