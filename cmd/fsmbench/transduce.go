package main

// The transduce experiment measures tokenize throughput: the htmltok
// transducer over generated HTML, per execution lane. Where the figure
// experiments time acceptance (one final state per input), this times
// useful-work extraction — spans/sec and output-bytes/sec alongside
// raw scan rate — because a tokenizer that scans fast but emits slowly
// is not actually fast. The report reuses the sustained-load schema,
// one machine row per lane, so `fsmbench -compare` gates tokenize
// throughput exactly like serving throughput (CI runs a same-runner
// two-pass compare).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/speculative"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/workload"
)

// transduceLane is one measurable execution path producing the full
// span list for the benchmark input.
type transduceLane struct {
	name string
	run  func() ([]core.Span, error)
}

// transduceExperiment runs every lane over the same input, checks they
// agree span-for-span, prints the throughput table, and (like
// sustained) writes a -bench-out report for the regression gate.
func transduceExperiment(opt *options) {
	header(fmt.Sprintf("transduce — htmltok tokenize throughput per lane (%d MiB HTML)", opt.mb))
	rep, err := runTransduceBench(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transduce: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-12s %-10s %10s %12s %14s %10s\n",
		"lane", "strategy", "MB/s", "spans/s", "out-MB/s", "spans")
	for _, m := range rep.Machines {
		fmt.Printf("%-12s %-10s %10.1f %12.0f %14.1f %10d\n",
			m.Lane, m.Strategy, m.ThroughputBytesPerSec/1e6,
			m.SpansPerSec, m.OutputBytesPerSec/1e6, m.Jobs)
	}
	fmt.Printf("\naggregate %.1f MB/s over %.1f MB of HTML\n",
		rep.ThroughputBytesPerSec/1e6, float64(rep.Bytes)/1e6)

	if opt.benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "transduce: encoding report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(opt.benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "transduce: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote transduce bench report to %s\n", opt.benchOut)
	}
}

// runTransduceBench builds the lanes, times them, and assembles a
// sustained-schema report. The top-level throughput is the aggregate
// (total bytes tokenized / total measured time), so a collapse in any
// one lane moves the gated number.
func runTransduceBench(opt *options) (*sustainedReport, error) {
	tr := htmltok.NewTransducer()
	plan, err := core.CompileTransducer(tr)
	if err != nil {
		return nil, fmt.Errorf("compiling htmltok: %v", err)
	}
	input := workload.HTMLPage(opt.seed+90, opt.mb<<20)
	start := tr.DFA().Start()

	single, err := core.NewFromPlan(plan, core.WithProcs(1))
	if err != nil {
		return nil, err
	}
	multi, err := core.NewFromPlan(plan, core.WithProcs(opt.procs))
	if err != nil {
		return nil, err
	}
	spec := speculative.New(tr.DFA(), opt.procs, input[:min(4096, len(input))])

	lanes := []transduceLane{
		{"single", func() ([]core.Span, error) {
			spans, _, err := single.TransduceSpans(input, start)
			return spans, err
		}},
		{"multicore", func() ([]core.Span, error) {
			spans, _, err := multi.TransduceSpans(input, start)
			return spans, err
		}},
		{"speculative", func() ([]core.Span, error) {
			// Phase 3 replay through the speculative fold: the callback
			// fires exactly once per chunk with the verified start state,
			// so the chunk-local spans stitch into the sequential list.
			var mu sync.Mutex
			var parts [][]core.Span
			_, _, err := spec.RunChunkedCtx(context.Background(), input, start,
				func(off int, chunk []byte, st fsm.State) fsm.State {
					spans, q := core.ScanSpans(tr, off, chunk, st)
					if len(spans) > 0 {
						mu.Lock()
						parts = append(parts, spans)
						mu.Unlock()
					}
					return q
				})
			return core.StitchSpans(parts), err
		}},
	}

	rep := &sustainedReport{
		Schema:  benchSchemaVersion,
		Seed:    opt.seed,
		Procs:   opt.procs,
		Bytes:   int64(len(input)),
		Runtime: telemetry.ReadRuntime(),
	}
	var reference []core.Span
	var totalTime time.Duration
	var totalBytes int64
	for _, lane := range lanes {
		var spans []core.Span
		var runErr error
		perCall := timeIt(300*time.Millisecond, func() {
			spans, runErr = lane.run()
		})
		if runErr != nil {
			return nil, fmt.Errorf("lane %s: %v", lane.name, runErr)
		}
		// Every lane must produce the exact sequential span list; a
		// fast-but-wrong lane is a correctness bug, not a benchmark row.
		if reference == nil {
			reference = spans
		} else if err := spansMatch(reference, spans); err != nil {
			return nil, fmt.Errorf("lane %s diverged from single: %v", lane.name, err)
		}
		var outBytes int64
		for _, s := range spans {
			outBytes += int64(s.End - s.Start)
		}
		secs := perCall.Seconds()
		row := sustainedMachine{
			Name:                  "htmltok",
			Strategy:              plan.Strategy().String(),
			Lane:                  lane.name,
			Jobs:                  int64(len(spans)),
			ThroughputBytesPerSec: float64(len(input)) / secs,
			SpansPerSec:           float64(len(spans)) / secs,
			OutputBytesPerSec:     float64(outBytes) / secs,
		}
		rep.Machines = append(rep.Machines, row)
		recordRow(reportRow{
			Experiment: "transduce",
			Machine:    "htmltok/" + lane.name,
			Strategy:   row.Strategy,
			Workload:   "html",
			Bytes:      len(input),
			NsPerOp:    perCall.Nanoseconds(),
			MBPerS:     row.ThroughputBytesPerSec / 1e6,
		})
		totalTime += perCall
		totalBytes += int64(len(input))
	}
	rep.DurationSec = totalTime.Seconds()
	if totalTime > 0 {
		rep.ThroughputBytesPerSec = float64(totalBytes) / totalTime.Seconds()
	}
	return rep, nil
}

// spansMatch reports the first divergence between two span lists.
func spansMatch(want, got []core.Span) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("span %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}
