package main

import (
	"fmt"

	"dpfsm/internal/huffman"
	"dpfsm/internal/textstats"
	"dpfsm/internal/workload"
)

// numBooks mirrors the paper's 34 most-downloaded Gutenberg books.
const numBooks = 34

// buildBooks generates the per-book codecs and decoder machines.
func buildBooks(opt *options, bookBytes int) []*huffman.DecoderFSM {
	var out []*huffman.DecoderFSM
	for b := 0; b < numBooks; b++ {
		text := workload.Book(opt.seed*1000+int64(b), bookBytes)
		c, err := huffman.FromSample(text)
		if err != nil {
			continue
		}
		f, err := c.DecoderFSM()
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Figure 15: the distribution of Huffman decoder FSM sizes before and
// after range coalescing across the 34 books.
//
// Paper shape to look for: trees with up to ~300 states whose maximum
// range is at most 16, which is what lets the decoder use byte-encoded
// names and a single shuffle per input byte.
func fig15(opt *options) {
	header("Figure 15 — Huffman decoder FSM states vs. range-coalesced width (34 books)")
	books := buildBooks(opt, 1<<18)

	var states, ranges []int
	for _, f := range books {
		states = append(states, f.ByteMachine.NumStates())
		ranges = append(ranges, f.ByteMachine.MaxRangeSize())
	}

	s := textstats.Summarize(states)
	r := textstats.Summarize(ranges)
	fmt.Printf("normal FA:        min=%d median=%.0f max=%d\n", s.Min, s.Median, s.Max)
	fmt.Printf("range coalesced:  min=%d median=%.0f max=%d\n", r.Min, r.Median, r.Max)
	fmt.Printf("books with range ≤16: %.0f%% (paper: 100%%)\n", 100*textstats.FractionAtMost(ranges, 16))

	fmt.Println("\nstate-count CDF:")
	for _, bound := range []int{50, 100, 150, 200, 250, 300} {
		fmt.Printf("  ≤%-4d %.0f%%\n", bound, 100*textstats.FractionAtMost(states, bound))
	}
}
