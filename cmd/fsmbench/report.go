package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/workload"
)

// Machine-readable output. Experiments record rows into a process-wide
// report; -json PATH serializes it at exit so CI and notebooks can track
// throughput and the telemetry counters without scraping the text
// tables.

// reportRow is one (experiment, machine, strategy, workload) cell.
type reportRow struct {
	Experiment string  `json:"experiment"`
	Machine    string  `json:"machine"`
	Strategy   string  `json:"strategy"`
	Workload   string  `json:"workload"`
	Bytes      int     `json:"bytes"`
	NsPerOp    int64   `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s"`
	// Telemetry is the runner's counter snapshot for exactly the runs
	// timed in NsPerOp (nil for experiments that only time).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Seed       int64       `json:"seed"`
	Corpus     int         `json:"corpus"`
	Rows       []reportRow `json:"rows"`
}

var reportRows []reportRow

func recordRow(r reportRow) { reportRows = append(reportRows, r) }

// writeReport dumps everything the experiments recorded. Called once
// from main after the selected experiments finish.
func writeReport(path string, opt *options) error {
	doc := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       opt.seed,
		Corpus:     opt.corpus,
		Rows:       reportRows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// telemetryExperiment runs a strategy × workload matrix with the
// runtime telemetry attached, reporting the live counters next to
// throughput. This is the observability cross-check for the §6.1
// shuffles experiment: where `shuffles` predicts cost from
// core.ProfileInput, this measures it from the executing runner — the
// two must agree (internal/core TestSnapshotAgreesWithProfile holds
// them within 10%).
func telemetryExperiment(opt *options) {
	header("telemetry — live counters per strategy × workload (ns/op and shuffles/symbol)")

	rng := rand.New(rand.NewSource(opt.seed + 90))
	machines := []struct {
		name string
		dfa  *fsm.DFA
	}{
		{"converging-40", fsm.RandomConverging(rng, 40, 8, 6, 0.2)},
		{"converging-300", fsm.RandomConverging(rng, 300, 8, 10, 0.2)},
	}
	workloads := []struct {
		name  string
		input func(int64, int) []byte
	}{
		{"wikitext", workload.WikiText},
		{"http", workload.HTTPTraffic},
	}
	strategies := []core.Strategy{
		core.Sequential, core.Base, core.BaseILP,
		core.Convergence, core.RangeCoalesced, core.RangeConvergence,
	}
	if opt.strategy != "" {
		only, _ := core.ParseStrategy(opt.strategy) // validated in main
		strategies = []core.Strategy{only}
	}
	size := opt.mb << 18 // quarter of -mb MiB per cell keeps `all` fast

	fmt.Printf("%-15s %-10s %-12s %10s %9s %12s %10s %8s\n",
		"machine", "workload", "strategy", "ns/op", "MB/s", "shuf/sym", "highwater", "final")
	for _, m := range machines {
		for _, w := range workloads {
			// The random machines have small alphabets; fold the byte
			// workload onto them so the symbol *sequence* shape (runs,
			// skew) survives even though the values are renamed.
			input := w.input(opt.seed+91, size)
			k := byte(m.dfa.NumSymbols())
			for i, b := range input {
				input[i] = b % k
			}
			for _, strat := range strategies {
				met := new(telemetry.Metrics)
				r, err := core.New(m.dfa,
					core.WithStrategy(strat),
					core.WithProcs(1),
					core.WithTelemetry(met))
				if err != nil {
					fmt.Printf("%-15s %-10s %-12s  skipped: %v\n", m.name, w.name, strat, err)
					continue
				}
				start := m.dfa.Start()
				d := timeIt(30*time.Millisecond, func() {
					sink(byte(r.Final(input, start)))
				})
				snap := met.Snapshot()
				nsPerOp := int64(d)
				fmt.Printf("%-15s %-10s %-12s %10d %9.1f %12.2f %10d %8.0f\n",
					m.name, w.name, strat, nsPerOp, mbps(len(input), d),
					snap.ShufflesPerSymbol, snap.ActiveHighWater, snap.ActiveFinalMean)
				recordRow(reportRow{
					Experiment: "telemetry",
					Machine:    m.name,
					Strategy:   strat.String(),
					Workload:   w.name,
					Bytes:      len(input),
					NsPerOp:    nsPerOp,
					MBPerS:     mbps(len(input), d),
					Telemetry:  &snap,
				})
			}
		}
	}
	fmt.Printf("\nshuf/sym counts emulated ⊗16,16 blocks (§4.2); sequential/base strategies gather without shuffling where noted as 0 or n-proportional.\n")
}
