package main

import (
	"fmt"
	"sort"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/workload"
)

// Figure 13: single-core performance of the enumerative computation
// with each optimization, over the sequential baseline of Figure 1(c)
// with optimal loop unrolling, on a sample of the corpus. The paper
// sorts convergence results by state count and range-coalescing
// results by maximum range size, producing plateaus at 16·⌈n/16⌉ and
// 16·⌈range/16⌉.
//
// Paper shape to look for: up to ~3× for convergence on ≤16-state
// machines and ~2.2× for range coalescing on its first plateau,
// degrading stepwise as the effective width crosses multiples of 16.
// Note (DESIGN.md): our shuffle is an emulation, so the absolute
// speedups sit below the paper's; the plateau structure and the
// ordering between the optimizations on their favorable machines are
// the reproduced shapes.
func fig13(opt *options) {
	header("Figure 13 — single-core speedup over sequential baseline")
	ms, _ := corpus(opt)
	sample := sampleMachines(ms, opt.sample)
	input := workload.WikiText(opt.seed+13, 1<<18)

	type result struct {
		states, maxRange int
		conv, rng        float64
	}
	var results []result
	for _, d := range sample {
		baseRunner, err := core.New(d, core.WithStrategy(core.Sequential))
		if err != nil {
			continue
		}
		convRunner, err := core.New(d, core.WithStrategy(core.Convergence))
		if err != nil {
			continue
		}
		var rangeRunner *core.Runner
		if d.MaxRangeSize() <= 256 {
			rangeRunner, _ = core.New(d, core.WithStrategy(core.RangeCoalesced))
		}

		var q fsm.State
		tBase := timeIt(10*time.Millisecond, func() { q = baseRunner.Final(input, d.Start()) })
		tConv := timeIt(10*time.Millisecond, func() { q = convRunner.Final(input, d.Start()) })
		r := result{states: d.NumStates(), maxRange: d.MaxRangeSize()}
		r.conv = float64(tBase) / float64(tConv)
		if rangeRunner != nil {
			tRange := timeIt(10*time.Millisecond, func() { q = rangeRunner.Final(input, d.Start()) })
			r.rng = float64(tBase) / float64(tRange)
		}
		_ = q
		results = append(results, r)
	}

	fmt.Println("\nconvergence, ranked by FSM state count:")
	sort.Slice(results, func(i, j int) bool { return results[i].states < results[j].states })
	fmt.Printf("%-6s %-8s %-10s %-10s\n", "rank", "states", "plateau", "speedup")
	for i, r := range results {
		fmt.Printf("%-6d %-8d %-10d %-10.2f\n", i, r.states, 16*((r.states+15)/16), r.conv)
	}

	fmt.Println("\nrange coalescing, ranked by max range size (machines with range ≤256):")
	var rr []result
	for _, r := range results {
		if r.rng > 0 {
			rr = append(rr, r)
		}
	}
	sort.Slice(rr, func(i, j int) bool { return rr[i].maxRange < rr[j].maxRange })
	fmt.Printf("%-6s %-8s %-10s %-10s\n", "rank", "range", "plateau", "speedup")
	for i, r := range rr {
		fmt.Printf("%-6d %-8d %-10d %-10.2f\n", i, r.maxRange, 16*((r.maxRange+15)/16), r.rng)
	}

	// Plateau summary (the figure's visual takeaway).
	fmt.Println("\nmean speedup by plateau:")
	summarizePlateaus := func(name string, xs []result, key func(result) int, val func(result) float64) {
		groups := map[int][]float64{}
		for _, r := range xs {
			if v := val(r); v > 0 {
				p := 16 * ((key(r) + 15) / 16)
				groups[p] = append(groups[p], v)
			}
		}
		var ps []int
		for p := range groups {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		fmt.Printf("  %-14s", name)
		for _, p := range ps {
			sum := 0.0
			for _, v := range groups[p] {
				sum += v
			}
			fmt.Printf(" %d:%.2f×(n=%d)", p, sum/float64(len(groups[p])), len(groups[p]))
		}
		fmt.Println()
	}
	summarizePlateaus("convergence", results, func(r result) int { return r.states }, func(r result) float64 { return r.conv })
	summarizePlateaus("range", rr, func(r result) int { return r.maxRange }, func(r result) float64 { return r.rng })

	// Ablation beyond the paper: convergence layered over range
	// coalescing recovers wide-first-range machines that plain range
	// coalescing handles poorly.
	fmt.Println("\nablation — range vs range+conv on machines with max range in (8, 256]:")
	fmt.Printf("%-8s %-8s %-12s %-12s\n", "states", "range", "range", "range+conv")
	for _, d := range sample {
		mr := d.MaxRangeSize()
		if mr <= 8 || mr > 256 {
			continue
		}
		baseRunner, err := core.New(d, core.WithStrategy(core.Sequential))
		if err != nil {
			continue
		}
		rRange, err1 := core.New(d, core.WithStrategy(core.RangeCoalesced))
		rBoth, err2 := core.New(d, core.WithStrategy(core.RangeConvergence))
		if err1 != nil || err2 != nil {
			continue
		}
		var q fsm.State
		tBase := timeIt(10*time.Millisecond, func() { q = baseRunner.Final(input, d.Start()) })
		tRange := timeIt(10*time.Millisecond, func() { q = rRange.Final(input, d.Start()) })
		tBoth := timeIt(10*time.Millisecond, func() { q = rBoth.Final(input, d.Start()) })
		_ = q
		fmt.Printf("%-8d %-8d %-12.2f %-12.2f\n",
			d.NumStates(), mr, float64(tBase)/float64(tRange), float64(tBase)/float64(tBoth))
	}
}
