package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// writeReportFile drops a minimal sustained report to disk.
func writeReportFile(t *testing.T, dir, name string, rep sustainedReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareRegressionGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReportFile(t, dir, "old.json", sustainedReport{
		Schema: benchSchemaVersion, ThroughputBytesPerSec: 100e6, LatencyP99Ns: 1e6,
	})

	cases := []struct {
		name       string
		throughput float64
		wantErr    bool
	}{
		{"improvement passes", 120e6, false},
		{"small drop passes", 90e6, false}, // -10%, inside the 15% gate
		{"at threshold passes", 85e6, false},
		{"regression fails", 80e6, true}, // -20%
		{"collapse fails", 1e6, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := writeReportFile(t, dir, "new.json", sustainedReport{
				Schema: benchSchemaVersion, ThroughputBytesPerSec: tc.throughput,
			})
			err := compareReports(base, p, regressionGate)
			if tc.wantErr && err == nil {
				t.Fatalf("throughput %g: want regression error, got nil", tc.throughput)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("throughput %g: unexpected error %v", tc.throughput, err)
			}
		})
	}
}

func TestCompareRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	good := writeReportFile(t, dir, "good.json", sustainedReport{
		Schema: benchSchemaVersion, ThroughputBytesPerSec: 1e6,
	})
	skewed := writeReportFile(t, dir, "skew.json", sustainedReport{
		Schema: benchSchemaVersion + 7, ThroughputBytesPerSec: 1e6,
	})
	if err := compareReports(good, skewed, regressionGate); err == nil {
		t.Fatal("schema-skewed report accepted")
	}
	if err := compareReports(good, filepath.Join(dir, "absent.json"), regressionGate); err == nil {
		t.Fatal("missing report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareReports(bad, good, regressionGate); err == nil {
		t.Fatal("corrupt report accepted")
	}
}

// TestRunSustainedSmoke drives the open-loop generator briefly — the
// same smoke shape CI runs — and checks the report's accounting holds
// together.
func TestRunSustainedSmoke(t *testing.T) {
	opt := &options{
		seed:     1,
		procs:    runtime.NumCPU(),
		duration: 300 * time.Millisecond,
		rps:      200,
		strategy: "auto",
	}
	rep, err := runSustained(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchSchemaVersion {
		t.Fatalf("schema = %d", rep.Schema)
	}
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("no load ran: offered=%d completed=%d", rep.Offered, rep.Completed)
	}
	if rep.Completed+rep.Errors+rep.Shed != rep.Offered {
		t.Fatalf("accounting leak: offered=%d completed=%d errors=%d shed=%d",
			rep.Offered, rep.Completed, rep.Errors, rep.Shed)
	}
	if rep.Bytes == 0 || rep.ThroughputBytesPerSec <= 0 {
		t.Fatalf("no throughput measured: bytes=%d rate=%g", rep.Bytes, rep.ThroughputBytesPerSec)
	}
	if rep.LatencyP50Ns <= 0 || rep.LatencyP99Ns < rep.LatencyP50Ns {
		t.Fatalf("latency quantiles inconsistent: p50=%d p99=%d", rep.LatencyP50Ns, rep.LatencyP99Ns)
	}
	if len(rep.Machines) != len(sustainedPatterns) {
		t.Fatalf("machines in report = %d, want %d", len(rep.Machines), len(sustainedPatterns))
	}
	for _, m := range rep.Machines {
		if m.Strategy == "" || m.Strategy == "auto" {
			t.Fatalf("machine %s strategy %q: want a resolved strategy", m.Name, m.Strategy)
		}
		if m.Lane == "" || m.SelectionReason == "" {
			t.Fatalf("machine %s missing adaptive selection: lane=%q reason=%q",
				m.Name, m.Lane, m.SelectionReason)
		}
	}
	// Round-trip through the comparator: a report compared against
	// itself is never a regression.
	dir := t.TempDir()
	p := writeReportFile(t, dir, "self.json", *rep)
	if err := compareReports(p, p, regressionGate); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
}
