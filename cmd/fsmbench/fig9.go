package main

import (
	"fmt"
	"math/rand"
	"sort"

	"dpfsm/internal/analysis"
	"dpfsm/internal/workload"
)

// Figure 9: convergence on random (natural-text) inputs. For every
// machine, run the enumerative computation on `trials` slices taken at
// random offsets of a Wikipedia-like text and record the mean number of
// active states at each prefix length; then report the max, mean,
// median and min of that per-machine value across the corpus.
//
// Paper shape to look for: better convergence than the adversarial
// case — every machine at ≤16 active states within ~20 steps — but
// convergence all the way to one state stays rare (min hits 1, median
// does not).
func fig9(opt *options) {
	header("Figure 9 — convergence on random inputs (max/mean/median/min active states)")
	ms, _ := corpus(opt)
	rng := rand.New(rand.NewSource(opt.seed + 9))
	source := workload.WikiText(opt.seed+90, 1<<20)

	const maxLen = 500
	lengths := []int{1, 2, 5, 10, 20, 50, 100, 200, 500}

	perMachine := make([][]float64, 0, len(ms))
	for _, d := range ms {
		perMachine = append(perMachine, analysis.RandomConvergence(d, rng, source, opt.trials, maxLen))
	}

	fmt.Printf("%-8s %10s %10s %10s %10s\n", "length", "max", "mean", "median", "min")
	for _, L := range lengths {
		vals := make([]float64, 0, len(perMachine))
		for _, curve := range perMachine {
			vals = append(vals, curve[L-1])
		}
		sort.Float64s(vals)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		fmt.Printf("%-8d %10.1f %10.2f %10.1f %10.1f\n",
			L, vals[len(vals)-1], sum/float64(len(vals)), vals[len(vals)/2], vals[0])
	}

	// The paper's two headline observations.
	atEnd := make([]float64, 0, len(perMachine))
	for _, curve := range perMachine {
		atEnd = append(atEnd, curve[maxLen-1])
	}
	le16, eq1 := 0, 0
	for _, v := range atEnd {
		if v <= 16 {
			le16++
		}
		if v <= 1 {
			eq1++
		}
	}
	fmt.Printf("\nafter %d symbols: %.1f%% of FSMs ≤16 active (paper: 100%%), %.1f%% at 1 active (paper: <50%%)\n",
		maxLen, 100*float64(le16)/float64(len(atEnd)), 100*float64(eq1)/float64(len(atEnd)))
}
