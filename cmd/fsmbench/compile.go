package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/workload"
)

// compileExperiment measures the compile/execute split: what building
// a plan costs per strategy, what loading the same plan from its
// serialized form costs instead, and whether a reloaded plan is
// observationally identical to a freshly built one (byte-identical
// final states over a shared input, from every start state). It then
// drives the engine's plan cache through repeated registrations of
// the same rule set — the fsmserve reload/restart pattern — and
// reports the hit rate (the acceptance bar is ≥ 99%).
func compileExperiment(opt *options) {
	header("compile — plan build vs serialized reload, and engine plan-cache reuse")

	ms, _ := corpus(opt)
	sample := sampleMachines(ms, opt.sample)
	input := workload.HTTPTraffic(opt.seed+80, 256<<10)

	strategies := []core.Strategy{
		core.Sequential, core.Base, core.BaseILP,
		core.Convergence, core.RangeCoalesced, core.RangeConvergence,
	}
	if opt.strategy != "" {
		s, _ := core.ParseStrategy(opt.strategy)
		strategies = []core.Strategy{s}
	}

	fmt.Printf("%-12s %9s %12s %12s %9s %12s %9s\n",
		"strategy", "machines", "build(µs)", "load(µs)", "speedup", "plan(KB)", "identical")
	for _, strat := range strategies {
		var machines int
		var buildNs, loadNs, planBytes int64
		identical := true
		for _, d := range sample {
			plan, err := core.CompilePlan(d, core.WithStrategy(strat))
			if err != nil {
				// Machines whose max range exceeds the byte-name limit
				// cannot use the range strategies; skip them here the
				// way Auto would never pick them.
				continue
			}
			machines++
			buildNs += int64(timeIt(2*time.Millisecond, func() {
				_, _ = core.CompilePlan(d, core.WithStrategy(strat))
			}))
			data, err := plan.MarshalBinary()
			if err != nil {
				fmt.Fprintf(os.Stderr, "compile experiment: marshal: %v\n", err)
				return
			}
			planBytes += int64(len(data))
			loadNs += int64(timeIt(2*time.Millisecond, func() {
				_, _ = core.UnmarshalPlan(data)
			}))
			if !plansMatch(plan, data, input) {
				identical = false
			}
		}
		if machines == 0 {
			continue
		}
		speedup := float64(buildNs) / float64(loadNs)
		fmt.Printf("%-12s %9d %12.1f %12.1f %8.1fx %12.1f %9v\n",
			strat, machines,
			float64(buildNs)/float64(machines)/1e3,
			float64(loadNs)/float64(machines)/1e3,
			speedup,
			float64(planBytes)/float64(machines)/1e3,
			identical)
		recordRow(reportRow{
			Experiment: "compile",
			Machine:    fmt.Sprintf("corpus-%d", machines),
			Strategy:   strat.String(),
			Workload:   "plan-roundtrip",
			Bytes:      int(planBytes),
			NsPerOp:    buildNs / int64(machines),
		})
		if !identical {
			fmt.Fprintf(os.Stderr, "compile experiment: strategy %s: reloaded plan diverged from built plan\n", strat)
			os.Exit(1)
		}
	}

	// Plan-cache reuse: register the same rule set into fresh engines
	// sharing one cache, the way a reloading/restarting server would.
	// Round 1 compiles every machine (misses); every later round must
	// hit.
	met := new(telemetry.Metrics)
	cache := engine.NewPlanCache(0, met)
	const rounds = 200
	regSample := sample
	if len(regSample) > 16 {
		regSample = regSample[:16]
	}
	t0 := time.Now()
	for round := 0; round < rounds; round++ {
		eng := engine.New(engine.WithProcs(1), engine.WithPlanCache(cache))
		for i, d := range regSample {
			if _, err := eng.Register(fmt.Sprintf("m%d", i), d); err != nil {
				fmt.Fprintf(os.Stderr, "compile experiment: register: %v\n", err)
				os.Exit(1)
			}
		}
		eng.Close()
	}
	elapsed := time.Since(t0)
	stats := cache.Stats()
	snap := met.Snapshot()
	fmt.Printf("\nplan cache: %d registrations, %d hits, %d misses, hit rate %.2f%% (%d plans, %d rounds, %v)\n",
		stats.Hits+stats.Misses, stats.Hits, stats.Misses, 100*stats.HitRate(),
		stats.Entries, rounds, elapsed.Round(time.Millisecond))
	recordRow(reportRow{
		Experiment: "compile",
		Machine:    fmt.Sprintf("cache-%d", len(regSample)),
		Strategy:   "auto",
		Workload:   "register-rounds",
		Bytes:      int(stats.Hits + stats.Misses),
		NsPerOp:    int64(elapsed) / rounds,
		Telemetry:  &snap,
	})
	if stats.HitRate() < 0.99 {
		fmt.Fprintf(os.Stderr, "compile experiment: plan cache hit rate %.2f%% below 99%%\n", 100*stats.HitRate())
		os.Exit(1)
	}
}

// plansMatch checks that a plan reloaded from data produces
// byte-identical match results to the built plan: equal composition
// vectors (final state from every start) plus equal accept outcomes
// over the shared input.
func plansMatch(built *core.Plan, data []byte, input []byte) bool {
	loaded, err := core.UnmarshalPlan(data)
	if err != nil || loaded.Fingerprint() != built.Fingerprint() {
		return false
	}
	rb, err := core.NewFromPlan(built)
	if err != nil {
		return false
	}
	rl, err := core.NewFromPlan(loaded)
	if err != nil {
		return false
	}
	vb := rb.CompositionVector(input)
	vl := rl.CompositionVector(input)
	if len(vb) != len(vl) {
		return false
	}
	bb := make([]byte, 0, 2*len(vb))
	bl := make([]byte, 0, 2*len(vl))
	for i := range vb {
		bb = append(bb, byte(vb[i]), byte(vb[i]>>8))
		bl = append(bl, byte(vl[i]), byte(vl[i]>>8))
	}
	if !bytes.Equal(bb, bl) {
		return false
	}
	return rb.Accepts(input) == rl.Accepts(input) &&
		rb.Final(input, built.Machine().Start()) == rl.Final(input, loaded.Machine().Start())
}
