package main

import (
	"fmt"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/fsm"
	"dpfsm/internal/workload"
)

// Figure 14: multicore strong scaling for the Snort machines. For each
// optimization, the baseline is its own single-core enumerative time —
// the figure isolates the Figure 5 parallel-prefix scaling from the
// single-core wins of Figure 13.
//
// Paper shape to look for: near-linear scaling up to 8 cores (then the
// per-core chunks get too small), largely independent of which
// single-core optimization is in use. This container exposes
// runtime.NumCPU() cores, so the sweep is truncated accordingly.
func fig14(opt *options) {
	header("Figure 14 — multicore speedup over single-core enumerative (Snort machines)")
	ms, _ := corpus(opt)
	// Pick a few machines representative of the favorable regime.
	var picks []*fsm.DFA
	for _, d := range ms {
		if d.NumStates() >= 8 && d.NumStates() <= 64 && d.MaxRangeSize() <= 32 {
			picks = append(picks, d)
		}
		if len(picks) == 4 {
			break
		}
	}
	if len(picks) == 0 {
		picks = ms[:1]
	}
	input := workload.WikiText(opt.seed+14, opt.mb<<20)

	for _, strat := range []core.Strategy{core.Convergence, core.RangeCoalesced} {
		fmt.Printf("\nstrategy %s:\n%-8s", strat, "procs")
		for i := range picks {
			fmt.Printf(" %10s", fmt.Sprintf("fsm%d(n=%d)", i, picks[i].NumStates()))
		}
		fmt.Println()

		base := make([]time.Duration, len(picks))
		for p := 1; p <= opt.procs; p++ {
			fmt.Printf("%-8d", p)
			for i, d := range picks {
				if strat == core.RangeCoalesced && d.MaxRangeSize() > 256 {
					fmt.Printf(" %10s", "-")
					continue
				}
				r, err := core.New(d, core.WithStrategy(strat), core.WithProcs(p))
				if err != nil {
					fmt.Printf(" %10s", "-")
					continue
				}
				var q fsm.State
				t := timeIt(20*time.Millisecond, func() { q = r.Final(input, d.Start()) })
				_ = q
				if p == 1 {
					base[i] = t
				}
				fmt.Printf(" %9.2f×", float64(base[i])/float64(t))
			}
			fmt.Println()
		}
	}
}
