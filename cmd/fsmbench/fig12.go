package main

import (
	"fmt"

	"dpfsm/internal/textstats"
)

// Figure 12: structure of the regex corpus — the CDF of machine state
// counts ("Normal FA") and of maximum transition-range sizes ("Range
// Coalesced", i.e. the effective machine width after renaming).
//
// Paper shape to look for: median 25 states, >95% of machines under
// 256 states, maximum in the thousands; 78% of range-coalesced
// machines at width ≤16.
func fig12(opt *options) {
	header("Figure 12 — corpus distribution: states vs. range-coalesced width")
	ms, _ := corpus(opt)

	var states, ranges []int
	for _, d := range ms {
		states = append(states, d.NumStates())
		ranges = append(ranges, d.MaxRangeSize())
	}

	printDistribution := func(name string, xs []int) {
		s := textstats.Summarize(xs)
		fmt.Printf("%-16s n=%-5d min=%-5d median=%-7.1f mean=%-8.1f max=%-6d\n",
			name, s.N, s.Min, s.Median, s.Mean, s.Max)
		fmt.Printf("%-16s", "  CDF:")
		for _, bound := range []int{4, 8, 16, 32, 64, 128, 256, 1024, 4096, 20000} {
			fmt.Printf(" ≤%d:%.0f%%", bound, 100*textstats.FractionAtMost(xs, bound))
		}
		fmt.Println()
	}
	printDistribution("normal FA", states)
	printDistribution("range coalesced", ranges)

	fmt.Printf("\npaper checkpoints: median states 25 (ours %.1f); states ≤256: >95%% (ours %.0f%%); range ≤16: 78%% (ours %.0f%%)\n",
		textstats.Quantile(states, 0.5),
		100*textstats.FractionAtMost(states, 256),
		100*textstats.FractionAtMost(ranges, 16))
}
