package main

import (
	"fmt"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/workload"
)

// Figure 18: HTML tokenization throughput — the switch-encoded baseline
// ("Bing"), the single-core enumerative tokenizer with convergence
// ("Bing+conv"), and the multicore tokenizer from 1..N threads. The
// paper's machine reaches 2.3× single-core and 3025 MB/s (14× over
// baseline) at 16 cores; this container truncates the thread sweep at
// runtime.NumCPU() and, lacking real shuffle hardware, reproduces the
// scaling shape rather than the single-core constant (DESIGN.md).
func fig18(opt *options) {
	header("Figure 18 — HTML tokenization throughput (MB/s)")
	input := workload.HTMLPage(opt.seed+18, 6<<20) // the paper's 6 MB dump

	var toks []htmltok.Token
	tSwitch := timeIt(100*time.Millisecond, func() { toks = htmltok.TokenizeSwitch(input) })
	fmt.Printf("%-16s %10.1f MB/s   (%d tokens)\n", "Bing (switch)", mbps(len(input), tSwitch), len(toks))

	seqTok, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence))
	if err != nil {
		fmt.Println("tokenizer:", err)
		return
	}
	tTable := timeIt(100*time.Millisecond, func() { toks = seqTok.TokenizeTable(input) })
	fmt.Printf("%-16s %10.1f MB/s\n", "table (seq)", mbps(len(input), tTable))

	tConv := timeIt(100*time.Millisecond, func() { toks = seqTok.Tokenize(input) })
	fmt.Printf("%-16s %10.1f MB/s   (speedup over Bing: %.2f×)\n",
		"Bing+conv", mbps(len(input), tConv), float64(tSwitch)/float64(tConv))

	for p := 1; p <= opt.procs; p++ {
		tk, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence), core.WithProcs(p))
		if err != nil {
			continue
		}
		t := timeIt(100*time.Millisecond, func() { toks = tk.Tokenize(input) })
		fmt.Printf("threads:%-8d %10.1f MB/s   (%.2f× over Bing)\n",
			p, mbps(len(input), t), float64(tSwitch)/float64(t))
	}
	_ = toks
}
