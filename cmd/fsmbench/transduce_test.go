package main

import (
	"runtime"
	"testing"
)

// TestRunTransduceBenchSmoke runs the tokenize benchmark at a small
// input size — the divergence check inside runTransduceBench is the
// real assertion (every lane must emit the sequential span list) — and
// validates the report the regression gate consumes.
func TestRunTransduceBenchSmoke(t *testing.T) {
	opt := &options{seed: 1, mb: 1, procs: runtime.NumCPU()}
	rep, err := runTransduceBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchSchemaVersion {
		t.Fatalf("schema = %d", rep.Schema)
	}
	if len(rep.Machines) != 3 {
		t.Fatalf("lanes in report = %d, want single/multicore/speculative", len(rep.Machines))
	}
	seen := map[string]bool{}
	for _, m := range rep.Machines {
		seen[m.Lane] = true
		if m.Name != "htmltok" || m.Strategy == "" || m.Strategy == "auto" {
			t.Fatalf("row %+v: want htmltok with a resolved strategy", m)
		}
		if m.Jobs == 0 || m.ThroughputBytesPerSec <= 0 || m.SpansPerSec <= 0 || m.OutputBytesPerSec <= 0 {
			t.Fatalf("row %+v: rates must be positive on a non-empty workload", m)
		}
		if m.OutputBytesPerSec > m.ThroughputBytesPerSec {
			t.Fatalf("row %+v: spans cover more bytes than were scanned", m)
		}
	}
	for _, lane := range []string{"single", "multicore", "speculative"} {
		if !seen[lane] {
			t.Fatalf("lane %s missing from report (got %v)", lane, seen)
		}
	}
	if rep.ThroughputBytesPerSec <= 0 || rep.Bytes != 1<<20 {
		t.Fatalf("aggregate: rate=%g bytes=%d", rep.ThroughputBytesPerSec, rep.Bytes)
	}
	// The comparator must accept the transduce-shaped report.
	dir := t.TempDir()
	p := writeReportFile(t, dir, "self.json", *rep)
	if err := compareReports(p, p, regressionGate); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
}
