package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/engine"
	"dpfsm/internal/perfprofile"
	"dpfsm/internal/regex"
	"dpfsm/internal/telemetry"
	"dpfsm/internal/workload"
)

// The sustained experiment is the serving-path benchmark the figure
// experiments cannot be: instead of measuring one kernel in a tight
// loop, it offers an open-loop request stream — fixed rate, mixed
// machines, mixed input lengths — against the batch engine for a fixed
// wall-clock duration, exactly the shape fsmserve sees. Open loop
// matters: a closed loop slows its offered load down when the system
// slows down, hiding saturation; an open loop keeps offering, so
// queueing, shedding, and tail latency become visible. The result is a
// schema-versioned JSON report (BENCH_PR8.json at the repo root is the
// committed trajectory point) that `fsmbench -compare` diffs across
// commits, at -compare-threshold tolerance.

// benchSchemaVersion versions the sustained-report JSON; the
// comparator refuses to diff reports whose schemas it does not
// understand.
const benchSchemaVersion = 1

// regressionGate is the default throughput-drop fraction beyond which
// `fsmbench -compare` fails: 15%, wide enough to absorb shared-runner
// noise, tight enough to catch a real serving-path regression.
// -compare-threshold overrides it (CI's same-runner two-pass gate
// runs at 25%).
const regressionGate = 0.15

// sustainedMachine is one machine's row in the report: per-strategy
// observed kernel throughput and convergence behavior, from the
// per-machine perf profiles. The adaptive-selection fields (lane,
// reason, speculation counters) are additive: old reports simply omit
// them, so the schema version is unchanged.
type sustainedMachine struct {
	Name                  string  `json:"name"`
	Strategy              string  `json:"strategy"`
	Jobs                  int64   `json:"jobs"`
	ThroughputBytesPerSec float64 `json:"throughput_bytes_per_sec"`
	// SingleGBPerS / MulticoreGBPerS / SpeculativeGBPerS are the
	// per-lane kernel rates in GB/s (0 when the lane ran nothing).
	SingleGBPerS      float64 `json:"single_gb_per_s"`
	MulticoreGBPerS   float64 `json:"multicore_gb_per_s"`
	SpeculativeGBPerS float64 `json:"speculative_gb_per_s,omitempty"`
	ConvergenceRate   float64 `json:"convergence_rate"`
	LatencyP99Ns      int64   `json:"latency_p99_ns"`
	// Lane and SelectionReason record where the adaptive selector left
	// this machine's large-input dispatch at the end of the run.
	Lane            string `json:"lane,omitempty"`
	SelectionReason string `json:"selection_reason,omitempty"`
	// Speculation outcome counters, non-zero only when the speculative
	// lane ran.
	SpecChunks      int64   `json:"spec_chunks,omitempty"`
	SpecMispredicts int64   `json:"spec_mispredicts,omitempty"`
	MispredictRate  float64 `json:"mispredict_rate,omitempty"`
	// Transduce-experiment rates (also additive): how fast the lane
	// emits token spans and how many input bytes those spans cover per
	// second. Zero in sustained reports, which time acceptance only.
	SpansPerSec       float64 `json:"spans_per_sec,omitempty"`
	OutputBytesPerSec float64 `json:"output_bytes_per_sec,omitempty"`
}

// sustainedReport is the emitted JSON document.
type sustainedReport struct {
	Schema int `json:"schema"`
	// Config echoes the knobs so trajectory points are comparable.
	DurationSec float64 `json:"duration_sec"`
	TargetRPS   int     `json:"target_rps"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers"`
	Procs       int     `json:"procs"`

	// Open-loop accounting: Offered = Completed + Shed (+ still-queued
	// jobs drained at the end, which count as completed).
	Offered   int64   `json:"offered"`
	Completed int64   `json:"completed"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	ShedRate  float64 `json:"shed_rate"`

	Bytes                 int64   `json:"bytes"`
	AchievedRPS           float64 `json:"achieved_rps"`
	ThroughputBytesPerSec float64 `json:"throughput_bytes_per_sec"`

	LatencyP50Ns   int64 `json:"latency_p50_ns"`
	LatencyP90Ns   int64 `json:"latency_p90_ns"`
	LatencyP99Ns   int64 `json:"latency_p99_ns"`
	QueueHighWater int64 `json:"queue_high_water"`

	Machines []sustainedMachine        `json:"machines"`
	Runtime  telemetry.RuntimeSnapshot `json:"runtime"`
}

// sustainedPatterns mixes machine sizes: the small IDS rules fsmserve
// defaults to plus a larger alternation whose DFA stresses the
// enumerative lanes harder.
var sustainedPatterns = []struct{ name, pat string }{
	{"sqli", `UNION\s+SELECT`},
	{"traversal", `\.\./\.\./`},
	{"cgi", `/cgi-bin/.*\.(pl|sh)`},
	{"exfil", `(passwd|shadow|secret|token|credential)s?\.(txt|db|key)`},
}

// sustained runs the open-loop load generator and writes the report to
// -bench-out.
func sustained(opt *options) {
	header(fmt.Sprintf("sustained — open-loop serving load (%v at %d req/s)", opt.duration, opt.rps))
	rep, err := runSustained(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sustained: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-9s %9s %6s %6s %9s %10s %9s %10s %10s %10s\n",
		"offered", "completed", "err", "shed", "shed%", "MB", "MB/s", "p50(ms)", "p90(ms)", "p99(ms)")
	fmt.Printf("%-9d %9d %6d %6d %9.2f %10.1f %9.1f %10.3f %10.3f %10.3f\n",
		rep.Offered, rep.Completed, rep.Errors, rep.Shed, rep.ShedRate*100,
		float64(rep.Bytes)/1e6, rep.ThroughputBytesPerSec/1e6,
		float64(rep.LatencyP50Ns)/1e6, float64(rep.LatencyP90Ns)/1e6, float64(rep.LatencyP99Ns)/1e6)
	fmt.Printf("\n%-12s %-12s %-12s %8s %12s %12s %12s %8s\n",
		"machine", "strategy", "lane", "jobs", "single GB/s", "multi GB/s", "conv rate", "p99(ms)")
	for _, m := range rep.Machines {
		fmt.Printf("%-12s %-12s %-12s %8d %12.2f %12.2f %12.2f %8.3f\n",
			m.Name, m.Strategy, m.Lane, m.Jobs, m.SingleGBPerS, m.MulticoreGBPerS,
			m.ConvergenceRate, float64(m.LatencyP99Ns)/1e6)
		if m.SelectionReason != "" {
			fmt.Printf("%-12s   selection: %s\n", "", m.SelectionReason)
		}
	}

	if opt.benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sustained: encoding report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(opt.benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sustained: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote sustained bench report to %s\n", opt.benchOut)
	}
}

// runSustained drives the engine and assembles the report.
func runSustained(opt *options) (*sustainedReport, error) {
	if opt.rps <= 0 {
		return nil, fmt.Errorf("bad -rps %d", opt.rps)
	}
	if opt.duration <= 0 {
		return nil, fmt.Errorf("bad -duration %v", opt.duration)
	}
	met := new(telemetry.Metrics)
	profiles := perfprofile.NewStore("")
	eng := engine.New(
		engine.WithTelemetry(met),
		engine.WithProcs(opt.procs),
		engine.WithPerfProfiles(profiles),
	)
	defer eng.Close()
	// -strategy restricts the whole run to one strategy; "auto" (or
	// absence) lets compile-time selection and the adaptive layer pick.
	var regOpts []core.Option
	if opt.strategy != "" {
		s, _ := core.ParseStrategy(opt.strategy) // validated in main
		regOpts = append(regOpts, core.WithStrategy(s))
	}
	for _, p := range sustainedPatterns {
		d, err := regex.Compile(p.pat, regex.Options{})
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %v", p.name, err)
		}
		if _, err := eng.Register(p.name, d, regOpts...); err != nil {
			return nil, fmt.Errorf("register %q: %v", p.name, err)
		}
	}

	// Mixed input lengths: mostly small requests, a medium tier, and an
	// occasional large body that crosses the multicore threshold — the
	// size mix a front door actually sees. Generated once, reused
	// round-robin, so generation cost stays off the load path.
	inputs := [][]byte{
		workload.HTTPTraffic(opt.seed+80, 2<<10),
		workload.HTTPTraffic(opt.seed+81, 16<<10),
		workload.HTTPTraffic(opt.seed+82, 128<<10),
		workload.HTTPTraffic(opt.seed+83, eng.LargeInput()+(1<<20)),
	}
	// Weighted pick: index into this table by offered-count modulus.
	// 12 of 16 small, 2 medium, 1 large-ish, 1 multicore.
	mix := []int{0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 1, 0, 3}

	var offered, shed int64
	var completed, errored int64
	var bytesDone int64
	out := make(chan engine.Result, 4*opt.rps+1024)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range out {
			if r.Err != nil {
				errored++
				continue
			}
			completed++
			bytesDone += int64(r.Bytes)
		}
	}()

	interval := time.Second / time.Duration(opt.rps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	deadline := time.NewTimer(opt.duration)
	t0 := time.Now()
	ctx := context.Background()
loop:
	for {
		select {
		case <-deadline.C:
			break loop
		case <-ticker.C:
			job := engine.Job{
				Machine: sustainedPatterns[offered%int64(len(sustainedPatterns))].name,
				Input:   inputs[mix[offered%int64(len(mix))]],
			}
			offered++
			// Open loop: never block on backpressure. A full queue is a
			// shed request, which is itself a measurement.
			if err := eng.TrySubmit(ctx, job, int(offered), out); err != nil {
				shed++
			}
		}
	}
	ticker.Stop()
	elapsed := time.Since(t0)

	// Drain: finish everything still queued, then stop the collector.
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = eng.Shutdown(sctx)
	close(out)
	<-collectorDone

	snap := met.Snapshot()
	rep := &sustainedReport{
		Schema:      benchSchemaVersion,
		DurationSec: elapsed.Seconds(),
		TargetRPS:   opt.rps,
		Seed:        opt.seed,
		Workers:     eng.Workers(),
		Procs:       eng.Procs(),

		Offered:   offered,
		Completed: completed,
		Errors:    errored,
		Shed:      shed,

		Bytes:          bytesDone,
		LatencyP50Ns:   snap.EngineJobLatencyP50,
		LatencyP90Ns:   snap.EngineJobLatencyP90,
		LatencyP99Ns:   snap.EngineJobLatencyP99,
		QueueHighWater: snap.EngineQueueHighWater,
		Runtime:        telemetry.ReadRuntime(),
	}
	if offered > 0 {
		rep.ShedRate = float64(shed) / float64(offered)
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(completed) / elapsed.Seconds()
		rep.ThroughputBytesPerSec = float64(bytesDone) / elapsed.Seconds()
	}
	for _, p := range profiles.Profiles() {
		m := sustainedMachine{
			Name:                  p.Machine,
			Strategy:              p.Strategy,
			Jobs:                  p.Jobs,
			ThroughputBytesPerSec: p.ThroughputBytesPerSec,
			ConvergenceRate:       p.ConvergenceRate,
			LatencyP99Ns:          p.LatencyP99Ns,
			SpecChunks:            p.SpecChunks,
			SpecMispredicts:       p.SpecMispredicts,
			MispredictRate:        p.MispredictRate,
		}
		if ls, ok := p.Lanes[perfprofile.LaneSingle]; ok {
			m.SingleGBPerS = ls.BytesPerSec / 1e9
		}
		if ls, ok := p.Lanes[perfprofile.LaneMulticore]; ok {
			m.MulticoreGBPerS = ls.BytesPerSec / 1e9
		}
		if ls, ok := p.Lanes[perfprofile.LaneSpeculative]; ok {
			m.SpeculativeGBPerS = ls.BytesPerSec / 1e9
		}
		// Where the adaptive selector left this machine's dispatch.
		if em := eng.Machine(p.Machine); em != nil {
			sel := em.Selection()
			m.Lane, m.SelectionReason = sel.Lane, sel.Reason
		}
		rep.Machines = append(rep.Machines, m)
	}
	return rep, nil
}

// loadBenchReport reads and schema-checks one report.
func loadBenchReport(path string) (*sustainedReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep sustainedReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != benchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this fsmbench speaks %d", path, rep.Schema, benchSchemaVersion)
	}
	return &rep, nil
}

// compareReports diffs two sustained reports and returns an error when
// the new one's throughput regressed by more than threshold (a
// fraction: 0.15 = 15%). Improvements and sub-threshold noise pass.
// The comparison is bytes/sec, the single number the whole benchmark
// exists to track; latency and shed rate are printed for the human but
// do not gate, since they move with machine load far more than the
// kernel does.
func compareReports(oldPath, newPath string, threshold float64) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	o, n := oldRep.ThroughputBytesPerSec, newRep.ThroughputBytesPerSec
	fmt.Printf("throughput: %.1f MB/s -> %.1f MB/s", o/1e6, n/1e6)
	var delta float64
	if o > 0 {
		delta = (n - o) / o
		fmt.Printf(" (%+.1f%%)", delta*100)
	}
	fmt.Printf("\nlatency p99: %.3f ms -> %.3f ms\n",
		float64(oldRep.LatencyP99Ns)/1e6, float64(newRep.LatencyP99Ns)/1e6)
	fmt.Printf("shed rate: %.2f%% -> %.2f%%\n", oldRep.ShedRate*100, newRep.ShedRate*100)

	// Advisory per-machine diff: strategy/lane flips and kernel-rate
	// movement are printed for the human but never gate — the adaptive
	// selector is allowed to change its mind between commits.
	// Rows pair up by (name, lane): transduce reports carry one row per
	// lane under a single machine name. A name with exactly one old row
	// still matches across a lane flip, so sustained's lane advisories
	// keep firing.
	oldMachines := make(map[string][]sustainedMachine, len(oldRep.Machines))
	for _, m := range oldRep.Machines {
		oldMachines[m.Name] = append(oldMachines[m.Name], m)
	}
	for _, m := range newRep.Machines {
		var om sustainedMachine
		ok := false
		for _, c := range oldMachines[m.Name] {
			if c.Lane == m.Lane {
				om, ok = c, true
				break
			}
		}
		if !ok && len(oldMachines[m.Name]) == 1 {
			om, ok = oldMachines[m.Name][0], true
		}
		if !ok {
			continue
		}
		if om.Strategy != m.Strategy {
			fmt.Printf("advisory: %s strategy %s -> %s\n", m.Name, om.Strategy, m.Strategy)
		}
		if om.Lane != m.Lane && (om.Lane != "" || m.Lane != "") {
			fmt.Printf("advisory: %s lane %q -> %q\n", m.Name, om.Lane, m.Lane)
		}
		if om.ThroughputBytesPerSec > 0 && m.ThroughputBytesPerSec > 0 {
			d := (m.ThroughputBytesPerSec - om.ThroughputBytesPerSec) / om.ThroughputBytesPerSec
			if d < -threshold || d > threshold {
				fmt.Printf("advisory: %s throughput %+.1f%%\n", m.Name, d*100)
			}
		}
	}

	if o > 0 && delta < -threshold {
		return fmt.Errorf("throughput regression %.1f%% exceeds the %.0f%% gate", -delta*100, threshold*100)
	}
	return nil
}
