package main

import (
	"fmt"
	"runtime"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/htmltok"
	"dpfsm/internal/huffman"
	"dpfsm/internal/scalemodel"
	"dpfsm/internal/workload"
)

// scaling calibrates the analytic Figure 5 schedule model
// (internal/scalemodel) from measured single-core rates and projects
// strong-scaling curves to 16 cores — the paper's core count — so the
// multicore figures can be compared even when the host has few cores.
// The projection is validated against the measured points at
// 1..NumCPU.
func scaling(opt *options) {
	header("Scaling projection — Figure 5 schedule model, calibrated and projected to 16 cores")
	fmt.Printf("host cores: %d (paper: 16)\n\n", runtime.NumCPU())

	// --- HTML tokenization (Figure 18) ---
	page := workload.HTMLPage(opt.seed+30, opt.mb<<20)
	tkSeq, err := htmltok.NewTokenizer(core.WithStrategy(core.Convergence))
	if err != nil {
		fmt.Println("tokenizer:", err)
		return
	}
	var toks []htmltok.Token
	tTok := timeIt(100*time.Millisecond, func() { toks = tkSeq.TokenizeTable(page) })
	_ = toks
	tComp := timeIt(100*time.Millisecond, func() { tkSeq.Runner().CompositionVector(page) })
	tSwitch := timeIt(100*time.Millisecond, func() { htmltok.TokenizeSwitch(page) })

	pHTML := scalemodel.Params{
		InputBytes:    len(page),
		SeqMBps:       mbps(len(page), tTok),
		CompMBps:      mbps(len(page), tComp),
		SpawnOverhead: 20 * time.Microsecond,
	}
	fmt.Printf("HTML tokenization: seq %.0f MB/s, composition %.0f MB/s, switch baseline %.0f MB/s\n",
		pHTML.SeqMBps, pHTML.CompMBps, mbps(len(page), tSwitch))
	printProjection(opt, "tokenize (φ-bearing)", pHTML, mbps(len(page), tSwitch))

	// --- Huffman decoding (Figure 17) ---
	book := workload.Book(opt.seed*1000, 1<<18)
	payload := workload.WikiText(opt.seed+31, opt.mb<<20)
	codec, err := huffman.FromSample(append(append([]byte{}, book...), payload...))
	if err != nil {
		fmt.Println("huffman:", err)
		return
	}
	dec, err := codec.DecoderFSM()
	if err != nil {
		fmt.Println("huffman:", err)
		return
	}
	enc, err := codec.Encode(payload)
	if err != nil {
		fmt.Println("huffman:", err)
		return
	}
	r, err := dec.Runner()
	if err != nil {
		fmt.Println("huffman:", err)
		return
	}
	tDec := timeIt(100*time.Millisecond, func() { dec.DecodeSequential(enc) })
	tHComp := timeIt(100*time.Millisecond, func() { r.CompositionVector(enc.Data) })
	pHuff := scalemodel.Params{
		InputBytes:    len(enc.Data),
		SeqMBps:       mbps(len(enc.Data), tDec),
		CompMBps:      mbps(len(enc.Data), tHComp),
		SpawnOverhead: 20 * time.Microsecond,
	}
	fmt.Printf("\nHuffman decode: seq %.0f MB/s, composition %.0f MB/s\n", pHuff.SeqMBps, pHuff.CompMBps)
	printProjection(opt, "decode (φ-bearing)", pHuff, 0)

	fmt.Println("\naccept-only queries (no phase 3) scale as N/P·c — near-linear until bandwidth-bound:")
	fmt.Printf("%-8s", "procs")
	for p := 1; p <= 16; p *= 2 {
		fmt.Printf(" %7d", p)
	}
	fmt.Printf("\n%-8s", "model")
	for p := 1; p <= 16; p *= 2 {
		fmt.Printf(" %6.2f×", pHTML.AcceptSpeedup(p))
	}
	fmt.Println()
}

// printProjection prints modeled vs measured speedups; baseMBps, if
// positive, adds the speedup-over-baseline row (Figure 18's y-axis).
func printProjection(opt *options, label string, p scalemodel.Params, baseMBps float64) {
	if err := p.Validate(); err != nil {
		fmt.Println("model:", err)
		return
	}
	fmt.Printf("%-24s", "procs")
	for procs := 1; procs <= 16; procs *= 2 {
		fmt.Printf(" %7d", procs)
	}
	fmt.Printf("\n%-24s", label+" model")
	for procs := 1; procs <= 16; procs *= 2 {
		fmt.Printf(" %6.2f×", p.MealySpeedup(procs))
	}
	fmt.Println()
	if baseMBps > 0 {
		fmt.Printf("%-24s", "  over switch baseline")
		for procs := 1; procs <= 16; procs *= 2 {
			fmt.Printf(" %6.2f×", p.BaselineSpeedup(procs, baseMBps))
		}
		fmt.Println("   (paper fig 18: 2.3× at 1 core, 14× at 16)")
	}
}
