package main

import (
	"fmt"
	"math/rand"

	"dpfsm/internal/analysis"
	"dpfsm/internal/fsm"
	"dpfsm/internal/speculative"
	"dpfsm/internal/workload"
)

// permMachine builds a deterministic permutation machine; its sizes
// mirror the seed index.
func permMachine(seed int64) *fsm.DFA {
	rng := rand.New(rand.NewSource(seed))
	sizes := map[int64]int{1: 8, 2: 32, 3: 128}
	return fsm.RandomPermutation(rng, sizes[seed], 256, 0.3)
}

// speculation quantifies the §7 comparison: speculative chunk-start
// guessing versus the enumerative approach, over the regex corpus on
// natural text and on adversarial (non-converging) machines. The
// paper's argument — "the efficacy of a speculative approach is
// difficult to predict … the probability of cascading misspeculations
// increases with the number of processors" — shows up as the spread of
// hit rates and as re-run work growing with chunk count.
func speculation(opt *options) {
	header("§7 — speculative parallelization baseline vs enumerative")
	ms, _ := corpus(opt)
	sample := sampleMachines(ms, opt.sample)
	input := workload.WikiText(opt.seed+40, 1<<20)

	for _, procs := range []int{4, 8, 16} {
		hitBuckets := map[string]int{}
		totalReRun := 0
		for _, d := range sample {
			r := speculative.New(d, procs, input[:4096])
			_, stats := r.Final(input, d.Start())
			totalReRun += stats.ReRunBytes
			hr := stats.HitRate()
			switch {
			case hr >= 0.999:
				hitBuckets["all hit"]++
			case hr >= 0.5:
				hitBuckets["mostly hit"]++
			case hr > 0:
				hitBuckets["mostly miss"]++
			default:
				hitBuckets["all miss"]++
			}
		}
		fmt.Printf("procs=%-3d  all-hit %3d   mostly-hit %3d   mostly-miss %3d   all-miss %3d   re-run %.1f%% of input\n",
			procs, hitBuckets["all hit"], hitBuckets["mostly hit"], hitBuckets["mostly miss"], hitBuckets["all miss"],
			100*float64(totalReRun)/float64(len(sample)*len(input)))
	}

	// The adversarial side of the §7 argument: on machines whose
	// transition functions are permutations (or on crafted inputs that
	// avoid convergence — Figure 8's tail), the guess is wrong for
	// almost every chunk and the work cascades back to sequential.
	fmt.Println("\nadversarial (permutation) machines:")
	rngMachines := []struct {
		name string
		seed int64
	}{{"perm-8", 1}, {"perm-32", 2}, {"perm-128", 3}}
	for _, spec := range rngMachines {
		d := permMachine(spec.seed)
		r := speculative.New(d, 8, input[:4096])
		_, stats := r.Final(input, d.Start())
		fmt.Printf("  %-10s hit rate %5.1f%%   re-run %5.1f%% of input\n",
			spec.name, 100*stats.HitRate(),
			100*float64(stats.ReRunBytes)/float64(len(input)))
	}

	// Why speculation misses: most machines converge to >1 active
	// state, so no single guessed state can be right for all inputs.
	multi := 0
	for _, d := range sample {
		if analysis.ActiveStatesAt(d, input[:2000]) > 1 {
			multi++
		}
	}
	fmt.Printf("\n%d/%d machines hold >1 active state after 2000 natural-text symbols —\n", multi, len(sample))
	fmt.Println("on those, speculation depends on luck while enumeration is exact (§7).")
}
