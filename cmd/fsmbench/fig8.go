package main

import (
	"fmt"

	"dpfsm/internal/analysis"
)

// Figure 8: adversarial (worst-case) convergence. For every machine in
// the corpus and for thresholds 16/8/4, explore the reachable
// configuration space and determine the smallest k after which *every*
// input leaves at most that many active states. The plotted quantity
// is the proportion of the corpus converged by step k.
//
// Paper shape to look for: ~90% of machines at ≤16 active states after
// ~10 steps and ~95% after 200; only ~80% ever reach ≤8 and <70% reach
// ≤4 (permutation-like symbols block deeper convergence).
func fig8(opt *options) {
	header("Figure 8 — worst-case convergence CDF (adversarial inputs)")
	ms, _ := corpus(opt)

	thresholds := []int{16, 8, 4}
	checkpoints := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}

	type row struct {
		steps     []int // per machine: steps to converge, -1 = never
		never     int
		unsettled int
	}
	results := map[int]*row{}
	for _, th := range thresholds {
		results[th] = &row{}
	}

	for _, d := range ms {
		for _, th := range thresholds {
			r := results[th]
			res := analysis.AdversarialConvergence(d, th, opt.maxConfigs)
			switch {
			case !res.Explored:
				r.unsettled++
			case !res.Converges:
				r.never++
				r.steps = append(r.steps, -1)
			default:
				r.steps = append(r.steps, res.Steps)
			}
		}
	}

	fmt.Printf("%-22s", "steps k")
	for _, k := range checkpoints {
		fmt.Printf(" %6d", k)
	}
	fmt.Printf(" %8s %9s\n", "never", "unsettled")
	for _, th := range thresholds {
		r := results[th]
		total := len(ms)
		fmt.Printf("%%FSMs ≤%-2d active     ", th)
		for _, k := range checkpoints {
			count := 0
			for _, s := range r.steps {
				if s >= 0 && s <= k {
					count++
				}
			}
			fmt.Printf(" %5.1f%%", 100*float64(count)/float64(total))
		}
		fmt.Printf(" %7.1f%% %8.1f%%\n",
			100*float64(r.never)/float64(total),
			100*float64(r.unsettled)/float64(total))
	}
}
