package main

import (
	"fmt"

	"dpfsm/internal/core"
	"dpfsm/internal/textstats"
	"dpfsm/internal/workload"
)

// shuffles reproduces the §6.1 claim: "For more than 80% of these
// FSMs, our implementation performs one or two shuffle operations per
// input symbol." Every corpus machine is profiled on natural text
// under both optimizations' exact ⊗16,16 accounting (core.ProfileInput)
// and bucketed by mean shuffles per symbol, taking the better strategy
// per machine the way an FSM compiler would.
func shuffles(opt *options) {
	header("§6.1 claim — shuffle operations per input symbol across the corpus")
	ms, _ := corpus(opt)
	input := workload.WikiText(opt.seed+50, 1<<15)

	var best, conv, rng []int // per-mille shuffles/symbol for quantiles
	buckets := map[string]int{}
	wins := map[core.Strategy]int{}
	for _, d := range ms {
		p := core.ProfileInput(d, input)
		b, winner := p.BestPerSymbol()
		wins[winner]++
		best = append(best, int(b*1000))
		conv = append(conv, int(p.ConvPerSymbol()*1000))
		if p.RangeOK {
			rng = append(rng, int(p.RangePerSymbol()*1000))
		}
		switch {
		case b <= 1.01:
			buckets["≤1"]++
		case b <= 2.01:
			buckets["≤2"]++
		case b <= 4.01:
			buckets["≤4"]++
		default:
			buckets[">4"]++
		}
	}
	total := len(ms)
	fmt.Printf("machines by mean shuffles/symbol (better of conv/range):\n")
	for _, k := range []string{"≤1", "≤2", "≤4", ">4"} {
		fmt.Printf("  %-4s %4d  (%.1f%%)\n", k, buckets[k], 100*float64(buckets[k])/float64(total))
	}
	oneOrTwo := 100 * float64(buckets["≤1"]+buckets["≤2"]) / float64(total)
	fmt.Printf("\none or two shuffles per symbol: %.1f%% of the corpus (paper: >80%%)\n", oneOrTwo)
	fmt.Printf("winning strategy: range %d machines, convergence %d machines\n",
		wins[core.RangeCoalesced], wins[core.Convergence])
	fmt.Printf("median shuffles/symbol: best %.2f, convergence %.2f, range %.2f\n",
		textstats.Quantile(best, 0.5)/1000,
		textstats.Quantile(conv, 0.5)/1000,
		textstats.Quantile(rng, 0.5)/1000)
}
