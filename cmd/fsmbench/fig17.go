package main

import (
	"fmt"
	"time"

	"dpfsm/internal/core"
	"dpfsm/internal/huffman"
	"dpfsm/internal/workload"
)

// Figure 17: multicore Huffman decode — runtime versus processor count
// for each book's tree (the paper plots seconds for a 1 GB file across
// 16 cores; we plot per-core runtime and speedup for -mb MiB on the
// cores this machine has).
//
// Paper shape to look for: near-linear scaling to 8 cores, then flat.
func fig17(opt *options) {
	header("Figure 17 — Huffman multicore decode scaling")
	payload := workload.WikiText(opt.seed+17, opt.mb<<20)

	// One representative book (the paper plots all 34 as lines; the
	// scaling shape is shared). We use three spanning the size range.
	books := buildBooks(opt, 1<<18)
	picks := []int{0, len(books) / 2, len(books) - 1}

	fmt.Printf("%-8s", "procs")
	for _, bi := range picks {
		fmt.Printf(" %14s", fmt.Sprintf("book%d(n=%d)", bi, books[bi].ByteMachine.NumStates()))
	}
	fmt.Println("   (time, speedup vs 1 proc)")

	base := make([]time.Duration, len(picks))
	for p := 1; p <= opt.procs; p++ {
		fmt.Printf("%-8d", p)
		for i, bi := range picks {
			f := books[bi]
			bookText := workload.Book(opt.seed*1000+int64(bi), 1<<18)
			codec, err := huffman.FromSample(append(append([]byte{}, bookText...), payload...))
			if err != nil {
				fmt.Printf(" %14s", "-")
				continue
			}
			f2, err := codec.DecoderFSM()
			if err != nil {
				fmt.Printf(" %14s", "-")
				continue
			}
			f = f2
			enc, err := codec.Encode(payload)
			if err != nil {
				fmt.Printf(" %14s", "-")
				continue
			}
			var out []byte
			t := timeIt(50*time.Millisecond, func() {
				out, _ = f.DecodeParallel(enc, core.WithProcs(p))
			})
			_ = out
			if p == 1 {
				base[i] = t
			}
			fmt.Printf(" %8s %4.2f×", t.Round(time.Millisecond), float64(base[i])/float64(t))
		}
		fmt.Println()
	}
}
