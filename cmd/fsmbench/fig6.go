package main

import (
	"fmt"
	"math/rand"
	"time"

	"dpfsm/internal/gather"
)

// Figure 6: the gather microkernel. Emulates the inner loop of the base
// enumerative algorithm on random transition tables: a tight loop
// computing S = S ⊗m,n T over 1024 pre-generated random tables, for a
// grid of m (state-vector width) and n (table size), in both the
// non-SIMD (scalar loads) and emulated-SIMD (blocked shuffle/blend)
// implementations. Reported numbers are speedups over the sequential
// single-state baseline on the same number of input symbols.
//
// Paper shape to look for: non-SIMD holds ≈1.0 up to m=8 then degrades;
// SIMD peaks at n=16 (one shuffle per symbol) and beats non-SIMD for n
// up to ≈64; both step down at multiples of 16.
func fig6(opt *options) {
	header("Figure 6 — ⊗m,n gather microkernel speedup over sequential baseline")
	rng := rand.New(rand.NewSource(opt.seed))

	const numTables = 1024
	iters := 1 << 15

	ns := []int{16, 32, 64, 128, 256}
	ms := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

	fmt.Printf("%-10s %6s", "mode", "m\\n")
	for _, n := range ns {
		fmt.Printf(" %8d", n)
	}
	fmt.Println()

	for _, mode := range []string{"non-simd", "simd"} {
		for _, m := range ms {
			fmt.Printf("%-10s %6d", mode, m)
			for _, n := range ns {
				if m > n {
					fmt.Printf(" %8s", "-")
					continue
				}
				tables := make([][]byte, numTables)
				for i := range tables {
					t := make([]byte, n)
					for j := range t {
						t[j] = byte(rng.Intn(n))
					}
					tables[i] = t
				}
				s := make([]byte, m)
				for j := range s {
					s[j] = byte(rng.Intn(n))
				}

				// Sequential baseline: one dependent lookup per symbol.
				var q byte
				tSeq := timeIt(20*time.Millisecond, func() {
					for i := 0; i < iters; i++ {
						q = tables[i&(numTables-1)][q]
					}
				})
				sink(q)

				var tEnum time.Duration
				if mode == "simd" {
					tEnum = timeIt(20*time.Millisecond, func() {
						for i := 0; i < iters; i++ {
							gather.SIMDInto(s, s, tables[i&(numTables-1)])
						}
					})
				} else {
					tEnum = timeIt(20*time.Millisecond, func() {
						for i := 0; i < iters; i++ {
							gather.Into(s, s, tables[i&(numTables-1)])
						}
					})
				}
				sink(s[0])
				fmt.Printf(" %8.2f", float64(tSeq)/float64(tEnum))
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nshuffles per symbol (Cost m,n): m=16,n=16 → %d; m=16,n=64 → %d; m=64,n=64 → %d\n",
		gather.Cost(16, 16, 0), gather.Cost(16, 64, 0), gather.Cost(64, 64, 0))
}

var sinkVar byte

// sink defeats dead-code elimination in microkernels.
func sink(b byte) { sinkVar ^= b }
