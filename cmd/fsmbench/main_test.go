package main

import (
	"testing"
	"time"
)

func TestFigNumOrdering(t *testing.T) {
	cases := map[string]int{
		"fig6": 6, "fig12": 12, "fig18": 18,
		"scaling": 999, "speculation": 999,
	}
	for name, want := range cases {
		if got := figNum(name); got != want {
			t.Errorf("figNum(%q) = %d, want %d", name, got, want)
		}
	}
	if figNum("fig8") >= figNum("fig12") {
		t.Error("figures must sort numerically, not lexically")
	}
}

func TestMbps(t *testing.T) {
	if got := mbps(1_000_000, time.Second); got != 1.0 {
		t.Errorf("mbps = %v, want 1.0", got)
	}
	if got := mbps(100, 0); got != 0 {
		t.Errorf("zero duration should yield 0, got %v", got)
	}
}

func TestTimeItReturnsPositive(t *testing.T) {
	calls := 0
	d := timeIt(time.Millisecond, func() {
		calls++
		time.Sleep(100 * time.Microsecond)
	})
	if d <= 0 {
		t.Errorf("timeIt = %v", d)
	}
	if calls < 2 { // warmup + at least one timed call
		t.Errorf("only %d calls", calls)
	}
}

func TestSampleMachinesBounds(t *testing.T) {
	if got := sampleMachines(nil, 5); got != nil {
		t.Error("empty input should return nil")
	}
}
