// Command fsmbench regenerates every figure of the paper's evaluation
// (there are no numbered tables; Figures 6, 8, 9, 12, 13, 14, 15, 16,
// 17 and 18 are the complete set). Each experiment prints an aligned
// text table whose rows/series correspond to the figure's plotted
// quantities, so paper-vs-measured comparisons (EXPERIMENTS.md) can be
// made directly.
//
// Usage:
//
//	fsmbench -experiment fig6            # one figure
//	fsmbench -experiment all             # every figure (not the sustained load run)
//	fsmbench -experiment fig13 -corpus 269 -mb 4
//	fsmbench -experiment sustained -duration 30s -rps 500   # serving-path trajectory point
//	fsmbench -compare BENCH_PR8.json new.json               # regression gate (-compare-threshold, default >15% throughput drop fails)
//
// All workloads are generated deterministically from -seed; see
// internal/workload for the substitutions standing in for the paper's
// proprietary inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dpfsm/internal/core"
)

type options struct {
	experiment string
	strategy   string // "" = full strategy matrix
	seed       int64
	corpus     int // number of generated Snort-shaped rules
	sample     int // FSMs measured in timing figures
	mb         int // input megabytes for throughput figures
	procs      int
	trials     int
	maxConfigs int
	jsonPath   string // machine-readable report destination ("" = off)
	traceOut   string // slowest-job trace dump destination ("" = off)
	traceTop   int    // how many slowest traces -trace-out keeps

	// Sustained-load experiment knobs.
	duration         time.Duration // open-loop generator wall-clock duration
	rps              int           // offered request rate
	benchOut         string        // sustained report destination ("" = off)
	compare          string        // old report path; with a positional new path, diff and gate
	compareThreshold float64       // throughput-drop fraction the gate tolerates
}

func main() {
	var opt options
	flag.StringVar(&opt.experiment, "experiment", "all",
		"which figure to regenerate: fig6 fig8 fig9 fig12 fig13 fig14 fig15 fig16 fig17 fig18 scaling speculation shuffles telemetry engine compile sustained transduce, or all (all skips sustained and transduce: they write -bench-out reports, run them explicitly)")
	flag.Int64Var(&opt.seed, "seed", 1, "workload generator seed")
	flag.IntVar(&opt.corpus, "corpus", 400, "size of the generated Snort-shaped rule corpus (paper: 2711)")
	flag.IntVar(&opt.sample, "sample", 60, "FSMs sampled for timing figures (paper: 269)")
	flag.IntVar(&opt.mb, "mb", 4, "input size in MiB for throughput figures (paper: up to 1024)")
	flag.IntVar(&opt.procs, "procs", runtime.NumCPU(), "maximum processor count for scaling figures (paper: 16)")
	flag.IntVar(&opt.trials, "trials", 10, "random inputs per FSM in Figure 9 (paper: 10)")
	flag.IntVar(&opt.maxConfigs, "maxconfigs", 1<<17, "configuration budget per FSM in Figure 8")
	flag.StringVar(&opt.jsonPath, "json", "", "also write a machine-readable report (rows + telemetry snapshots) to this path")
	flag.StringVar(&opt.traceOut, "trace-out", "", "engine experiment: write the slowest job traces (span trees) as JSON to this path")
	flag.IntVar(&opt.traceTop, "trace-top", 10, "how many slowest traces -trace-out retains")
	flag.StringVar(&opt.strategy, "strategy", "",
		"restrict strategy-matrix experiments to one strategy, one of: "+
			strings.Join(core.Strategies(), " ")+" (default: the full matrix)")
	flag.DurationVar(&opt.duration, "duration", 10*time.Second, "sustained experiment: open-loop generator duration")
	flag.IntVar(&opt.rps, "rps", 500, "sustained experiment: offered request rate per second")
	flag.StringVar(&opt.benchOut, "bench-out", "BENCH_PR8.json", "sustained experiment: report destination (\"\" disables the write)")
	flag.StringVar(&opt.compare, "compare", "",
		"compare OLD (this flag) against NEW (first positional arg): exit nonzero on a throughput regression past -compare-threshold, e.g. fsmbench -compare old.json new.json")
	flag.Float64Var(&opt.compareThreshold, "compare-threshold", regressionGate,
		"throughput-drop fraction -compare tolerates before failing (0.25 = fail on >25% drops)")
	flag.Parse()

	// Comparator mode: `fsmbench -compare old.json new.json` diffs two
	// sustained reports and gates on throughput. No experiment runs.
	if opt.compare != "" {
		newPath := flag.Arg(0)
		if newPath == "" {
			fmt.Fprintln(os.Stderr, "usage: fsmbench -compare old.json new.json")
			os.Exit(2)
		}
		if opt.compareThreshold <= 0 || opt.compareThreshold >= 1 {
			fmt.Fprintln(os.Stderr, "-compare-threshold: want a fraction in (0,1)")
			os.Exit(2)
		}
		if err := compareReports(opt.compare, newPath, opt.compareThreshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("within the regression gate")
		return
	}

	if opt.strategy != "" {
		if _, err := core.ParseStrategy(opt.strategy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	experiments := map[string]func(*options){
		"fig6":        fig6,
		"fig8":        fig8,
		"fig9":        fig9,
		"fig12":       fig12,
		"fig13":       fig13,
		"fig14":       fig14,
		"fig15":       fig15,
		"fig16":       fig16,
		"fig17":       fig17,
		"fig18":       fig18,
		"scaling":     scaling,
		"speculation": speculation,
		"shuffles":    shuffles,
		"telemetry":   telemetryExperiment,
		"engine":      engineExperiment,
		"compile":     compileExperiment,
		"sustained":   sustained,
		"transduce":   transduceExperiment,
	}
	if opt.experiment == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			// The sustained experiment burns -duration of wall clock by
			// design, and both it and transduce write -bench-out reports;
			// they only run when asked for by name.
			if n == "sustained" || n == "transduce" {
				continue
			}
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return figNum(names[i]) < figNum(names[j])
		})
		for _, n := range names {
			experiments[n](&opt)
		}
	} else if run, ok := experiments[opt.experiment]; ok {
		run(&opt)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", opt.experiment)
		flag.Usage()
		os.Exit(2)
	}
	if opt.jsonPath != "" {
		if err := writeReport(opt.jsonPath, &opt); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", opt.jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote JSON report (%d rows) to %s\n", len(reportRows), opt.jsonPath)
	}
}

func figNum(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "fig%d", &n); err != nil {
		return 999 // non-figure experiments (scaling) run last
	}
	return n
}

// header prints a figure banner.
func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// timeIt measures fn, repeating until at least minDur has elapsed, and
// returns the per-call duration.
func timeIt(minDur time.Duration, fn func()) time.Duration {
	fn() // warm up
	var total time.Duration
	calls := 0
	for total < minDur {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return total / time.Duration(calls)
}

// mbps converts bytes processed in d to MB/s.
func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}
